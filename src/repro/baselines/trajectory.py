"""Trajectory representation-learning baselines (Table III).

All seven models share the two-stage protocol of the originals: a
self-supervised pre-training pass over the training trajectories, followed by
per-task heads fitted on top of the learned representations.  (This is the
"individual training on each task" the paper contrasts BIGCity against.)

The defining mechanism of each method is preserved at small scale:

* **Trajectory2vec** — GRU auto-encoding of the segment sequence.
* **t2vec** — GRU denoising auto-encoder (inputs are corrupted, the clean
  sequence is reconstructed).
* **TremBR** — time-aware GRU reconstruction (segment + travel-time targets).
* **Toast** — skip-gram pre-trained segment embeddings + transformer MLM.
* **JCLRNT** — contrastive learning between two augmented trajectory views.
* **START** — transformer with temporal-regularity features, MLM + contrastive.
* **JGRM** — joint GPS-view (midpoint coordinates) and route-view encoders
  with fusion, trained by MLM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.loader import TrajectoryBatch, collate_trajectories
from repro.data.timeutils import TIMESTAMP_FEATURE_DIM, timestamp_features
from repro.data.trajectory import Trajectory
from repro.tasks.decoding import constrained_next_hop_ranking
from repro.nn import losses
from repro.nn.layers import Embedding, Linear, MLP
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
class TrajectoryBaseline(Module):
    """Base class: segment/time embedding + an encoder + per-task heads."""

    #: human-readable name used in result tables
    name = "base"

    def __init__(self, dataset: CityDataset, hidden_dim: int = 32, seed: int = 0) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.num_segments = dataset.num_segments
        self.num_users = max((t.user_id for t in dataset.trajectories), default=0) + 1
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.segment_embedding = Embedding(self.num_segments, hidden_dim, rng=self._rng, std=0.5)
        self.time_projection = Linear(TIMESTAMP_FEATURE_DIM, hidden_dim, rng=self._rng)
        self._build_encoder()
        # Shared segment-reconstruction decoder used by the self-supervised
        # objectives (auto-encoding / denoising / MLM).
        self._reconstruction_head = Linear(self.hidden_dim, self.num_segments, rng=self._rng)
        # Task heads are created lazily by the fit_* methods.
        self.next_hop_head: Optional[Linear] = None
        self.travel_time_head: Optional[MLP] = None
        self.classifier_head: Optional[Linear] = None
        self._classifier_target: Optional[str] = None

    # -- architecture hooks -------------------------------------------------
    def _build_encoder(self) -> None:
        raise NotImplementedError

    def _encode_inputs(self, inputs: Tensor, padding_mask: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Return ``(step_states, pooled)`` for embedded inputs ``(B, L, H)``."""
        raise NotImplementedError

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        """Self-supervised objective of the method."""
        raise NotImplementedError

    # -- shared embedding ---------------------------------------------------
    def _embed_batch(self, batch: TrajectoryBatch, corrupt: float = 0.0, hide_time: bool = False) -> Tensor:
        segments = batch.segments
        if corrupt > 0.0:
            noise_mask = self._rng.random(segments.shape) < corrupt
            random_segments = self._rng.integers(0, self.num_segments, size=segments.shape)
            segments = np.where(noise_mask & ~batch.padding_mask, random_segments, segments)
        segment_embedded = self.segment_embedding(segments)
        if hide_time:
            time_embedded = Tensor(np.zeros(segment_embedded.shape))
        else:
            time_features = np.stack(
                [np.stack([timestamp_features(t) for t in row]) for row in batch.timestamps]
            )
            time_embedded = self.time_projection(Tensor(time_features))
        return segment_embedded + time_embedded

    def encode(self, trajectories: Sequence[Trajectory], hide_time: bool = False) -> Tuple[Tensor, Tensor, TrajectoryBatch]:
        """Encode trajectories; returns ``(step_states, pooled, batch)``."""
        batch = collate_trajectories(list(trajectories))
        inputs = self._embed_batch(batch, hide_time=hide_time)
        step_states, pooled = self._encode_inputs(inputs, batch.padding_mask)
        return step_states, pooled, batch

    # -- pre-training -------------------------------------------------------
    def pretrain(self, epochs: int = 1, batch_size: int = 16, learning_rate: float = 2e-3) -> List[float]:
        """Run the method's self-supervised pre-training on the train split."""
        trajectories = self.dataset.train_trajectories
        optimizer = Adam(self.trainable_parameters(), lr=learning_rate)
        history = []
        for _ in range(epochs):
            order = self._rng.permutation(len(trajectories))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(order), batch_size):
                chunk = [trajectories[i] for i in order[start : start + batch_size]]
                batch = collate_trajectories(chunk)
                optimizer.zero_grad()
                loss = self.pretraining_loss(batch)
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.item())
                batches += 1
            history.append(epoch_loss / max(batches, 1))
        return history

    # -- shared reconstruction objective (used by several methods) ----------
    def _reconstruction_loss(self, batch: TrajectoryBatch, corrupt: float = 0.0) -> Tensor:
        inputs = self._embed_batch(batch, corrupt=corrupt)
        step_states, _ = self._encode_inputs(inputs, batch.padding_mask)
        logits = self._reconstruction_head(step_states)
        valid = ~batch.padding_mask
        flat_logits = logits.reshape(-1, self.num_segments)
        flat_targets = batch.segments.reshape(-1)
        flat_valid = valid.reshape(-1)
        picked = flat_logits[np.nonzero(flat_valid)[0]]
        targets = flat_targets[flat_valid]
        return losses.cross_entropy(picked, targets)

    def _contrastive_loss(self, batch: TrajectoryBatch, crop_ratio: float = 0.7) -> Tensor:
        """InfoNCE between two random crops of every trajectory."""
        trajectories = []
        for row in range(batch.batch_size):
            length = int(batch.lengths[row])
            segments = batch.segments[row, :length]
            timestamps = batch.timestamps[row, :length]
            trajectories.append((segments, timestamps))

        def crop(segments: np.ndarray, timestamps: np.ndarray) -> Trajectory:
            length = len(segments)
            keep = max(2, int(round(length * crop_ratio)))
            start = int(self._rng.integers(0, max(length - keep, 0) + 1))
            return Trajectory(0, 0, list(segments[start : start + keep]), list(timestamps[start : start + keep]))

        view_a = [crop(s, t) for s, t in trajectories]
        view_b = [crop(s, t) for s, t in trajectories]
        _, pooled_a, _ = self.encode(view_a)
        _, pooled_b, _ = self.encode(view_b)
        return losses.info_nce(pooled_a, pooled_b)

    # -- task heads ----------------------------------------------------------
    def fit_next_hop(
        self,
        epochs: int = 3,
        batch_size: int = 16,
        learning_rate: float = 3e-3,
        augmentation: int = 2,
    ) -> None:
        """Fine-tune a softmax head predicting the segment after a prefix.

        ``augmentation`` extra training examples per trajectory are created by
        cutting it at random intermediate positions (the same augmentation
        BIGCity's prompt-tuning stage uses), so the comparison stays fair.
        """
        self.next_hop_head = Linear(self.hidden_dim, self.num_segments, rng=self._rng)
        base_samples = [t for t in self.dataset.train_trajectories if len(t) >= 3]
        samples = list(base_samples)
        for trajectory in base_samples:
            if len(trajectory) > 3 and augmentation > 0:
                cuts = self._rng.choice(
                    np.arange(3, len(trajectory)),
                    size=min(augmentation, len(trajectory) - 3),
                    replace=False,
                )
                samples.extend(trajectory.slice(0, int(cut)) for cut in cuts)
        parameters = self.trainable_parameters() + [p for p in self.next_hop_head.parameters()]
        optimizer = Adam(parameters, lr=learning_rate)
        for _ in range(epochs):
            order = self._rng.permutation(len(samples))
            for start in range(0, len(order), batch_size):
                chunk = [samples[i] for i in order[start : start + batch_size]]
                prefixes = [t.slice(0, len(t) - 1) for t in chunk]
                targets = np.array([t.segments[-1] for t in chunk])
                optimizer.zero_grad()
                _, pooled, _ = self.encode(prefixes)
                loss = losses.cross_entropy(self.next_hop_head(pooled), targets)
                loss.backward()
                optimizer.step()

    def predict_next_hop(
        self,
        trajectories: Sequence[Trajectory],
        top_k: int = 10,
        constrain_to_network: bool = True,
    ) -> List[np.ndarray]:
        """Ranked next-segment candidates; input trajectories include the target hop.

        ``constrain_to_network`` ranks graph successors of the last observed
        segment first (the same road-network constraint BIGCity uses), keeping
        the comparison between models about ranking quality rather than about
        which model rediscovers the adjacency structure.
        """
        if self.next_hop_head is None:
            raise RuntimeError("call fit_next_hop before predicting")
        prefixes = [t.slice(0, len(t) - 1) for t in trajectories]
        with no_grad():
            _, pooled, _ = self.encode(prefixes)
            logits = self.next_hop_head(pooled).data
        rankings: List[np.ndarray] = []
        for prefix, row in zip(prefixes, logits):
            if constrain_to_network:
                rankings.append(
                    constrained_next_hop_ranking(row, int(prefix.segments[-1]), self.dataset.network, top_k=top_k)
                )
            else:
                rankings.append(np.argsort(-row)[:top_k])
        return rankings

    def fit_travel_time(self, epochs: int = 4, batch_size: int = 16, learning_rate: float = 3e-3) -> None:
        """Fine-tune a regression head predicting total travel time (minutes)."""
        self.travel_time_head = MLP(self.hidden_dim, [self.hidden_dim], 1, rng=self._rng)
        samples = self.dataset.train_trajectories
        parameters = self.trainable_parameters() + [p for p in self.travel_time_head.parameters()]
        optimizer = Adam(parameters, lr=learning_rate)
        for _ in range(epochs):
            order = self._rng.permutation(len(samples))
            for start in range(0, len(order), batch_size):
                chunk = [samples[i] for i in order[start : start + batch_size]]
                targets = np.array([[t.duration / 60.0] for t in chunk])
                optimizer.zero_grad()
                _, pooled, _ = self.encode(chunk, hide_time=True)
                loss = losses.mse_loss(self.travel_time_head(pooled), targets)
                loss.backward()
                optimizer.step()

    def predict_travel_time(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        """Predicted total travel time in seconds."""
        if self.travel_time_head is None:
            raise RuntimeError("call fit_travel_time before predicting")
        with no_grad():
            _, pooled, _ = self.encode(list(trajectories), hide_time=True)
            minutes = self.travel_time_head(pooled).data.reshape(-1)
        return np.clip(minutes, 0.0, None) * 60.0

    def fit_classifier(self, target: str = "user", epochs: int = 4, batch_size: int = 16, learning_rate: float = 3e-3) -> None:
        """Fine-tune a classification head (user linkage or binary pattern)."""
        num_classes = self.num_users if target == "user" else 2
        self.classifier_head = Linear(self.hidden_dim, num_classes, rng=self._rng)
        self._classifier_target = target
        samples = [t for t in self.dataset.train_trajectories if target == "user" or t.label is not None]
        parameters = self.trainable_parameters() + [p for p in self.classifier_head.parameters()]
        optimizer = Adam(parameters, lr=learning_rate)
        for _ in range(epochs):
            order = self._rng.permutation(len(samples))
            for start in range(0, len(order), batch_size):
                chunk = [samples[i] for i in order[start : start + batch_size]]
                if target == "user":
                    targets = np.array([t.user_id for t in chunk])
                else:
                    targets = np.array([int(t.label) for t in chunk])
                optimizer.zero_grad()
                _, pooled, _ = self.encode(chunk)
                loss = losses.cross_entropy(self.classifier_head(pooled), targets)
                loss.backward()
                optimizer.step()

    def predict_class(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        if self.classifier_head is None:
            raise RuntimeError("call fit_classifier before predicting")
        with no_grad():
            _, pooled, _ = self.encode(list(trajectories))
            logits = self.classifier_head(pooled).data
        return np.argmax(logits, axis=-1)

    def class_scores(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        if self.classifier_head is None:
            raise RuntimeError("call fit_classifier before predicting")
        with no_grad():
            _, pooled, _ = self.encode(list(trajectories))
            logits = self.classifier_head(pooled).data
        exp = np.exp(logits - logits.max(axis=-1, keepdims=True))
        return exp / exp.sum(axis=-1, keepdims=True)

    def embed(self, trajectories: Sequence[Trajectory], batch_size: int = 32) -> np.ndarray:
        """Trajectory embeddings for similarity search."""
        outputs = []
        with no_grad():
            for start in range(0, len(trajectories), batch_size):
                chunk = list(trajectories[start : start + batch_size])
                _, pooled, _ = self.encode(chunk)
                outputs.append(pooled.data.copy())
        return np.concatenate(outputs, axis=0)


class _GRUEncoderMixin:
    """Encoder built from a single GRU; pooled state = final hidden state."""

    def _build_encoder(self) -> None:
        self.encoder = GRU(self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _encode_inputs(self, inputs: Tensor, padding_mask: np.ndarray) -> Tuple[Tensor, Tensor]:
        step_states, final_hidden = self.encoder(inputs, padding_mask=padding_mask)
        return step_states, final_hidden


class _TransformerEncoderMixin:
    """Encoder built from a bidirectional transformer; pooled state = masked mean."""

    _num_layers = 2
    _num_heads = 2

    def _build_encoder(self) -> None:
        self.encoder = TransformerEncoder(
            d_model=self.hidden_dim,
            num_layers=self._num_layers,
            num_heads=self._num_heads,
            max_position=256,
            seed=self.seed,
        )

    def _encode_inputs(self, inputs: Tensor, padding_mask: np.ndarray) -> Tuple[Tensor, Tensor]:
        step_states = self.encoder(inputs, padding_mask=padding_mask)
        keep = Tensor((~padding_mask).astype(np.float64)[:, :, None])
        pooled = (step_states * keep).sum(axis=1) / keep.sum(axis=1).clip(1e-9, np.inf)
        return step_states, pooled


# ----------------------------------------------------------------------
# The seven baselines
# ----------------------------------------------------------------------
class Trajectory2Vec(_GRUEncoderMixin, TrajectoryBaseline):
    """Yao et al. 2017: RNN auto-encoding of behaviour sequences."""

    name = "traj2vec"

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        return self._reconstruction_loss(batch, corrupt=0.0)


class T2Vec(_GRUEncoderMixin, TrajectoryBaseline):
    """Li et al. 2018: denoising seq2seq trajectory representation."""

    name = "t2vec"

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        return self._reconstruction_loss(batch, corrupt=0.25)


class TremBR(_GRUEncoderMixin, TrajectoryBaseline):
    """Fu & Lee 2020: time-aware GRU with segment and travel-time reconstruction."""

    name = "trembr"

    def _build_encoder(self) -> None:
        super()._build_encoder()
        self._time_head = Linear(self.hidden_dim, 1, rng=self._rng)

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        inputs = self._embed_batch(batch)
        step_states, _ = self._encode_inputs(inputs, batch.padding_mask)
        logits = self._reconstruction_head(step_states)
        valid = ~batch.padding_mask
        flat_logits = logits.reshape(-1, self.num_segments)[np.nonzero(valid.reshape(-1))[0]]
        targets = batch.segments.reshape(-1)[valid.reshape(-1)]
        segment_loss = losses.cross_entropy(flat_logits, targets)
        # Travel-time regression on the per-step intervals (minutes).
        intervals = np.zeros_like(batch.timestamps)
        intervals[:, 1:] = np.diff(batch.timestamps, axis=1) / 60.0
        predicted = self._time_head(step_states).reshape(batch.batch_size, batch.max_length)
        valid_t = Tensor(valid.astype(np.float64))
        time_loss = (((predicted - Tensor(intervals)) * valid_t) ** 2).sum() / max(float(valid.sum()), 1.0)
        return segment_loss + 0.1 * time_loss


class Toast(_TransformerEncoderMixin, TrajectoryBaseline):
    """Chen et al. 2021: skip-gram road embeddings + transformer MLM."""

    name = "toast"

    def pretrain(self, epochs: int = 1, batch_size: int = 16, learning_rate: float = 2e-3) -> List[float]:
        self._skipgram_pretrain()
        return super().pretrain(epochs=epochs, batch_size=batch_size, learning_rate=learning_rate)

    def _skipgram_pretrain(self, num_walks: int = 40, walk_length: int = 8, window: int = 2, epochs: int = 1, learning_rate: float = 5e-3) -> None:
        """Skip-gram over random walks on the road network to warm-start segment embeddings."""
        network = self.dataset.network
        context_embedding = Embedding(self.num_segments, self.hidden_dim, rng=self._rng)
        optimizer = Adam(self.segment_embedding.parameters() + context_embedding.parameters(), lr=learning_rate)
        walks = [
            network.random_walk(int(self._rng.integers(0, self.num_segments)), walk_length, self._rng)
            for _ in range(num_walks)
        ]
        for _ in range(epochs):
            centers, contexts = [], []
            for walk in walks:
                for i, center in enumerate(walk):
                    for j in range(max(0, i - window), min(len(walk), i + window + 1)):
                        if i != j:
                            centers.append(center)
                            contexts.append(walk[j])
            if not centers:
                return
            optimizer.zero_grad()
            center_vectors = self.segment_embedding(np.asarray(centers))
            logits = center_vectors.matmul(context_embedding.weight.transpose())
            loss = losses.cross_entropy(logits, np.asarray(contexts))
            loss.backward()
            optimizer.step()

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        # Masked language modelling over road segments: corrupt 15% of inputs.
        return self._reconstruction_loss(batch, corrupt=0.15)


class JCLRNT(_TransformerEncoderMixin, TrajectoryBaseline):
    """Mao et al. 2022: joint contrastive learning of road network and trajectory views."""

    name = "jclrnt"

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        contrastive = self._contrastive_loss(batch)
        reconstruction = self._reconstruction_loss(batch, corrupt=0.15)
        return contrastive + 0.5 * reconstruction


class START(_TransformerEncoderMixin, TrajectoryBaseline):
    """Jiang et al. 2023: temporal-regularity-aware transformer with MLM + contrastive."""

    name = "start"

    _num_layers = 3

    def _build_encoder(self) -> None:
        super()._build_encoder()
        # Explicit time-of-day / day-of-week embedding: START emphasises
        # temporal periodicity on top of travel semantics.
        self.periodicity_projection = Linear(TIMESTAMP_FEATURE_DIM, self.hidden_dim, rng=self._rng)

    def _embed_batch(self, batch: TrajectoryBatch, corrupt: float = 0.0, hide_time: bool = False) -> Tensor:
        base = super()._embed_batch(batch, corrupt=corrupt, hide_time=hide_time)
        if hide_time:
            return base
        time_features = np.stack(
            [np.stack([timestamp_features(t) for t in row]) for row in batch.timestamps]
        )
        return base + self.periodicity_projection(Tensor(time_features))

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        return self._reconstruction_loss(batch, corrupt=0.15) + self._contrastive_loss(batch)


class JGRM(TrajectoryBaseline):
    """Ma et al. 2024: joint GPS-view and route-view modelling with fusion."""

    name = "jgrm"

    def _build_encoder(self) -> None:
        self.route_encoder = TransformerEncoder(
            d_model=self.hidden_dim, num_layers=2, num_heads=2, max_position=256, seed=self.seed
        )
        self.gps_encoder = GRU(2, self.hidden_dim, rng=self._rng)
        self.fusion = Linear(2 * self.hidden_dim, self.hidden_dim, rng=self._rng)
        self._midpoints = np.array([s.midpoint for s in self.dataset.network.segments])
        extent = np.maximum(self._midpoints.max(axis=0) - self._midpoints.min(axis=0), 1e-9)
        self._midpoints = (self._midpoints - self._midpoints.min(axis=0)) / extent

    def _encode_inputs(self, inputs: Tensor, padding_mask: np.ndarray) -> Tuple[Tensor, Tensor]:
        # Route view.
        route_states = self.route_encoder(inputs, padding_mask=padding_mask)
        keep = Tensor((~padding_mask).astype(np.float64)[:, :, None])
        route_pooled = (route_states * keep).sum(axis=1) / keep.sum(axis=1).clip(1e-9, np.inf)
        # GPS view (midpoint coordinate sequence of the same segments).
        coordinates = self._midpoints[self._current_segments]
        _, gps_pooled = self.gps_encoder(Tensor(coordinates), padding_mask=padding_mask)
        fused = self.fusion(Tensor.concat([route_pooled, gps_pooled], axis=-1))
        return route_states, fused

    def _embed_batch(self, batch: TrajectoryBatch, corrupt: float = 0.0, hide_time: bool = False) -> Tensor:
        # Remember the segment ids so the GPS view can look up coordinates.
        self._current_segments = batch.segments
        return super()._embed_batch(batch, corrupt=corrupt, hide_time=hide_time)

    def pretraining_loss(self, batch: TrajectoryBatch) -> Tensor:
        return self._reconstruction_loss(batch, corrupt=0.15)


#: Registry used by the benchmark harness.
TRAJECTORY_BASELINES: Dict[str, Type[TrajectoryBaseline]] = {
    cls.name: cls for cls in (Trajectory2Vec, T2Vec, TremBR, Toast, JCLRNT, START, JGRM)
}


def build_trajectory_baseline(name: str, dataset: CityDataset, hidden_dim: int = 32, seed: int = 0) -> TrajectoryBaseline:
    """Instantiate a trajectory baseline by its registry name."""
    if name not in TRAJECTORY_BASELINES:
        raise KeyError(f"unknown trajectory baseline {name!r}; available: {sorted(TRAJECTORY_BASELINES)}")
    return TRAJECTORY_BASELINES[name](dataset, hidden_dim=hidden_dim, seed=seed)
