"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.eval.results` — result-table containers and text formatting.
* :mod:`repro.eval.harness` — benchmark profiles plus cached construction of
  trained BIGCity models and baselines (so several experiments can share one
  training run).
* :mod:`repro.eval.experiments` — one ``run_*`` function per table / figure.
* :mod:`repro.eval.registry` — the experiment index mapping each paper
  artefact (Table III, Fig. 5, ...) to its runner.
* :mod:`repro.eval.radar` — text rendering of the Figure 1 radar chart.
* :mod:`repro.eval.repeats` — repeated-run (mean ± std) aggregation.
* :mod:`repro.eval.report` — Markdown reproduction reports (paper vs measured).
* :mod:`repro.eval.stats` — paired significance tests for model comparisons.
* :mod:`repro.eval.perfbench` — engine micro-benchmarks (fused kernels,
  KV-cached decode) emitting config-hashed ``BENCH_engine.json`` reports.
"""

from repro.eval.results import ResultTable
from repro.eval.harness import BenchmarkProfile, QUICK_PROFILE, FULL_PROFILE, get_profile, ExperimentContext
from repro.eval.radar import render_radar, radar_from_table
from repro.eval.repeats import AggregatedTable, aggregate_tables, repeat_experiment
from repro.eval.report import PaperReference, ReproductionReport
from repro.eval.stats import ComparisonResult, compare_models
from repro.eval.paper_values import PAPER_REFERENCES, build_reproduction_report, get_reference
from repro.eval.experiments import (
    run_table2_dataset_statistics,
    run_table3_trajectory_tasks,
    run_table4_recovery,
    run_table5_traffic_state,
    run_table6_generalization,
    run_table7_design_ablations,
    run_table8_cotraining_ablations,
    run_table9_efficiency,
    run_fig1_radar,
    run_fig5_lora_sensitivity,
    run_fig6_scalability,
)
from repro.eval.perfbench import PerfBenchConfig, PerfBenchReport, run_perfbench, write_report
from repro.eval.registry import EXPERIMENTS, get_experiment

__all__ = [
    "ResultTable",
    "BenchmarkProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "get_profile",
    "ExperimentContext",
    "run_table2_dataset_statistics",
    "run_table3_trajectory_tasks",
    "run_table4_recovery",
    "run_table5_traffic_state",
    "run_table6_generalization",
    "run_table7_design_ablations",
    "run_table8_cotraining_ablations",
    "run_table9_efficiency",
    "run_fig1_radar",
    "run_fig5_lora_sensitivity",
    "run_fig6_scalability",
    "EXPERIMENTS",
    "get_experiment",
    "PerfBenchConfig",
    "PerfBenchReport",
    "run_perfbench",
    "write_report",
    "render_radar",
    "radar_from_table",
    "AggregatedTable",
    "aggregate_tables",
    "repeat_experiment",
    "PaperReference",
    "ReproductionReport",
    "ComparisonResult",
    "compare_models",
    "PAPER_REFERENCES",
    "get_reference",
    "build_reproduction_report",
]
