"""Process-parallel, merge-deterministic experiment evaluation.

The experiment harness regenerates every paper table sequentially on one
core; this module fans *experiment units* out over a
:class:`concurrent.futures.ProcessPoolExecutor` instead:

* :func:`run_sharded` — the generic primitive: map a picklable top-level
  function over a list of units with ``N`` worker processes.  Results come
  back **in unit order** (not completion order), so the merged output is
  deterministic regardless of worker scheduling.
* :func:`run_experiments` — the registry-level runner: each unit is one
  experiment id from :mod:`repro.eval.registry`, executed in its own
  :class:`~repro.eval.harness.ExperimentContext` with a deterministically
  derived seed.  Because the per-unit seeding happens *inside* the unit, a
  serial run (``num_workers=1``, executed inline in this process) and a
  sharded run produce bit-for-bit identical tables.

The worker count defaults to the ``REPRO_EVAL_WORKERS`` environment variable
(1 when unset), so the slow benchmark tier can be regenerated with e.g.::

    REPRO_EVAL_WORKERS=4 python -m repro.eval.parallel table3 table4 table5

Trade-off to know about: the serial harness shares one
:class:`ExperimentContext` (and therefore one set of trained models) across
experiments, while sharded workers each train their own.  Sharding wins
wall-clock when experiments are dominated by their *own* work — which the
paper's table suite is — and always wins determinism-per-unit, but it does
not share caches across processes.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "run_sharded",
    "run_experiments",
    "unit_seed",
]

#: Environment variable holding the default worker count.
WORKERS_ENV = "REPRO_EVAL_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(num_workers: Optional[int] = None) -> int:
    """Resolve the worker count: explicit argument, else ``REPRO_EVAL_WORKERS``, else 1."""
    if num_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        try:
            num_workers = int(raw) if raw else 1
        except ValueError as error:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from error
    return max(1, int(num_workers))


def run_sharded(
    fn: Callable[[T], R],
    units: Sequence[T],
    num_workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``units`` with ``num_workers`` processes, results in unit order.

    ``fn`` must be a picklable top-level callable and every unit/result must
    survive a round-trip through the process pool.  With ``num_workers <= 1``
    (or a single unit) the map runs inline in this process — the exact same
    code path a serial caller would take, which is what makes
    serial-vs-sharded equality testable.
    """
    units = list(units)
    workers = resolve_workers(num_workers)
    if workers <= 1 or len(units) <= 1:
        return [fn(unit) for unit in units]
    workers = min(workers, len(units))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, units, chunksize=max(1, chunksize)))


def unit_seed(base_seed: int, unit_name: str) -> int:
    """Deterministic per-unit seed: stable across processes and Python runs."""
    return (int(base_seed) * 1000003 + zlib.crc32(unit_name.encode("utf-8"))) % (2**32)


def _execute_experiment(payload: Tuple[str, Optional[str]]):
    """Worker body: run one registered experiment in a fresh context.

    The global NumPy RNG is reseeded from the profile seed and the experiment
    id before the runner starts, so any code path drawing from the implicit
    global stream sees the same draws whether the unit runs inline or in a
    worker process.
    """
    experiment_id, profile_name = payload
    from repro.eval.harness import ExperimentContext, get_profile
    from repro.eval.registry import get_experiment

    profile = get_profile(profile_name)
    np.random.seed(unit_seed(profile.seed, experiment_id))
    spec = get_experiment(experiment_id)
    result = spec.runner(ExperimentContext(profile))
    return experiment_id, result


def run_experiments(
    experiment_ids: Sequence[str],
    profile_name: Optional[str] = None,
    num_workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run registered experiments, optionally sharded over worker processes.

    Returns ``{experiment_id: runner_result}`` in the order the ids were
    given.  Each experiment trains and evaluates inside its own seeded
    context, so the mapping is identical for any worker count.
    """
    payloads = [(str(experiment_id), profile_name) for experiment_id in experiment_ids]
    results = run_sharded(_execute_experiment, payloads, num_workers=num_workers)
    return dict(results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.eval.parallel [--workers N] [--profile P] id [id ...]``"""
    import argparse

    from repro.eval.registry import EXPERIMENTS
    from repro.eval.results import ResultTable

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all registered)")
    parser.add_argument("--workers", type=int, default=None, help=f"worker processes (default: ${WORKERS_ENV} or 1)")
    parser.add_argument("--profile", default=None, help="benchmark profile (quick/full/smoke)")
    args = parser.parse_args(argv)

    ids = args.experiments or sorted(EXPERIMENTS)
    results = run_experiments(ids, profile_name=args.profile, num_workers=args.workers)
    for experiment_id, result in results.items():
        tables = [result] if isinstance(result, ResultTable) else list(result.values())
        for table in tables:
            print(table.to_text())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
