"""Result tables: the rows the benchmark harness prints for every experiment."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ResultTable:
    """A simple (model x metric) table with formatting helpers.

    The benchmark harness prints these tables so that each run reproduces the
    rows of the corresponding paper table; ``best_by`` makes the "who wins"
    comparison explicit.
    """

    title: str
    #: metric name -> True when larger is better.
    higher_is_better: Dict[str, bool] = field(default_factory=dict)
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add_row(self, model: str, metrics: Dict[str, float]) -> None:
        """Add (or extend) the metrics of one model."""
        row = self.rows.setdefault(model, {})
        for key, value in metrics.items():
            row[key] = float(value)

    @property
    def metric_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows.values():
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def value(self, model: str, metric: str) -> Optional[float]:
        return self.rows.get(model, {}).get(metric)

    def best_by(self, metric: str) -> Optional[str]:
        """Name of the best model according to ``metric``."""
        candidates = [(model, row[metric]) for model, row in self.rows.items() if metric in row]
        if not candidates:
            return None
        higher = self.higher_is_better.get(metric, True)
        return max(candidates, key=lambda item: item[1] if higher else -item[1])[0]

    def winners(self) -> Dict[str, str]:
        """Best model per metric."""
        return {metric: self.best_by(metric) for metric in self.metric_names}

    def rank_of(self, model: str, metric: str) -> Optional[int]:
        """1-based rank of ``model`` under ``metric`` (1 = best)."""
        candidates = [(name, row[metric]) for name, row in self.rows.items() if metric in row]
        if not candidates or model not in dict(candidates):
            return None
        higher = self.higher_is_better.get(metric, True)
        ordered = sorted(candidates, key=lambda item: -item[1] if higher else item[1])
        return [name for name, _ in ordered].index(model) + 1

    # ------------------------------------------------------------------
    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Plain-text rendering (used by the benchmark harness printouts)."""
        metrics = self.metric_names
        header = ["model"] + metrics
        lines = [self.title, "-" * len(self.title)]
        widths = [max(len(header[0]), max((len(m) for m in self.rows), default=5))]
        widths += [max(len(name), 9) for name in metrics]
        lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
        for model, row in self.rows.items():
            cells = [model.ljust(widths[0])]
            for metric, width in zip(metrics, widths[1:]):
                value = row.get(metric)
                cell = float_format.format(value) if value is not None else "-"
                cells.append(cell.ljust(width))
            lines.append("  ".join(cells))
        winner_cells = ["best".ljust(widths[0])]
        for metric, width in zip(metrics, widths[1:]):
            winner = self.best_by(metric) or "-"
            winner_cells.append(winner.ljust(width))
        lines.append("  ".join(winner_cells))
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "title": self.title,
            "higher_is_better": dict(self.higher_is_better),
            "rows": {model: dict(row) for model, row in self.rows.items()},
            "winners": self.winners(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
