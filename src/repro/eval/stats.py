"""Statistical significance helpers for model comparisons.

The paper repeats each comparison ten times and reports means; when two
models are close, the interesting question is whether the gap is larger than
run-to-run noise.  This module provides the standard tools for that question
on paired per-sample scores (two models evaluated on the same test cases):

* :func:`paired_t_test` — classical paired t-test.
* :func:`wilcoxon_test` — non-parametric signed-rank alternative.
* :func:`bootstrap_difference` — bootstrap confidence interval on the mean
  difference.
* :func:`compare_models` — one-call summary combining the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "ComparisonResult",
    "paired_t_test",
    "wilcoxon_test",
    "bootstrap_difference",
    "compare_models",
]


def _paired(first, second) -> Tuple[np.ndarray, np.ndarray]:
    first = np.asarray(first, dtype=np.float64).reshape(-1)
    second = np.asarray(second, dtype=np.float64).reshape(-1)
    if first.shape != second.shape:
        raise ValueError(f"paired scores must have the same length ({first.shape[0]} vs {second.shape[0]})")
    if first.shape[0] < 2:
        raise ValueError("paired comparisons need at least two samples")
    return first, second


def paired_t_test(first: Sequence[float], second: Sequence[float]) -> Tuple[float, float]:
    """Paired t-test on two aligned score vectors; returns ``(statistic, p_value)``."""
    first, second = _paired(first, second)
    if np.allclose(first, second):
        return 0.0, 1.0
    result = scipy_stats.ttest_rel(first, second)
    return float(result.statistic), float(result.pvalue)


def wilcoxon_test(first: Sequence[float], second: Sequence[float]) -> Tuple[float, float]:
    """Wilcoxon signed-rank test; returns ``(statistic, p_value)``.

    Falls back to ``(0, 1)`` when all differences are zero (the test is
    undefined there, and the models are trivially indistinguishable).
    """
    first, second = _paired(first, second)
    differences = first - second
    if np.allclose(differences, 0.0):
        return 0.0, 1.0
    result = scipy_stats.wilcoxon(first, second)
    return float(result.statistic), float(result.pvalue)


def bootstrap_difference(
    first: Sequence[float],
    second: Sequence[float],
    num_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, Tuple[float, float]]:
    """Bootstrap the mean difference ``first - second``.

    Returns ``(mean_difference, (low, high))`` where the interval is the
    central ``confidence`` quantile range of the bootstrap distribution.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 1:
        raise ValueError("num_resamples must be positive")
    first, second = _paired(first, second)
    differences = first - second
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(differences), size=(num_resamples, len(differences)))
    resampled_means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    return float(differences.mean()), (float(low), float(high))


@dataclass
class ComparisonResult:
    """Summary of a paired comparison between two models."""

    model_a: str
    model_b: str
    metric: str
    mean_a: float
    mean_b: float
    mean_difference: float
    t_statistic: float
    t_p_value: float
    wilcoxon_p_value: float
    confidence_interval: Tuple[float, float]
    higher_is_better: bool

    @property
    def winner(self) -> str:
        """The model with the better mean (ties go to ``model_a``)."""
        if self.mean_a == self.mean_b:
            return self.model_a
        a_better = self.mean_a > self.mean_b if self.higher_is_better else self.mean_a < self.mean_b
        return self.model_a if a_better else self.model_b

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the paired t-test rejects equality at level ``alpha``."""
        return self.t_p_value < alpha

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "mean_difference": self.mean_difference,
            "t_statistic": self.t_statistic,
            "t_p_value": self.t_p_value,
            "wilcoxon_p_value": self.wilcoxon_p_value,
            "ci_low": self.confidence_interval[0],
            "ci_high": self.confidence_interval[1],
        }


def compare_models(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    model_a: str = "a",
    model_b: str = "b",
    metric: str = "score",
    higher_is_better: bool = True,
    seed: int = 0,
) -> ComparisonResult:
    """Run the full paired-comparison battery on two aligned score vectors."""
    first, second = _paired(scores_a, scores_b)
    t_statistic, t_p_value = paired_t_test(first, second)
    _, wilcoxon_p_value = wilcoxon_test(first, second)
    mean_difference, interval = bootstrap_difference(first, second, seed=seed)
    return ComparisonResult(
        model_a=model_a,
        model_b=model_b,
        metric=metric,
        mean_a=float(first.mean()),
        mean_b=float(second.mean()),
        mean_difference=mean_difference,
        t_statistic=t_statistic,
        t_p_value=t_p_value,
        wilcoxon_p_value=wilcoxon_p_value,
        confidence_interval=interval,
        higher_is_better=higher_is_better,
    )
