"""Engine micro-benchmarks with config-hashed, regression-comparable output.

The fused-kernel fast path (:mod:`repro.nn.functional`), the KV-cached
decoding path (:class:`repro.nn.attention.KVCache`), the float32 compute
policy (:func:`repro.nn.tensor.compute_dtype`), the batched rollout
(``BIGCity.rollout_next_hops_batch``), the batched single-pass evaluation
paths (``recover_trajectories_batch`` / ``predict_traffic_states_batch`` /
``impute_traffic_states_batch``), the sharded evaluation runner
(:mod:`repro.eval.parallel`) and the continuous-batching serving layer
(:mod:`repro.serving`) are *claimed* speedups; this module measures them.
Each benchmark times the optimised path against the formulation it
replaced — fused vs composed tape nodes, cached vs full re-encode, float32
vs float64 step, one padded batch vs per-trajectory rollouts, ``N`` worker
processes vs an inline loop, a continuously-batched request trace vs
serial per-request execution — and the report is written as
``BENCH_engine.json`` so later PRs have a perf trajectory to regress against
(``scripts/bench_compare.py`` diffs two such files; sections that one report
lacks are listed as skipped, so old baselines stay diffable as sections are
added).

Timing is *paired*: the two variants of a benchmark are sampled alternately
and each keeps its best sample, so a burst of machine noise (CPU steal on a
shared core) lands on both sides instead of skewing the ratio.

Following the conduit ``ExperimentConfig`` idiom, a report carries a stable
``config_id`` — the truncated SHA-256 of its sorted-JSON config — so two
reports are comparable exactly when their ids match.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn import losses
from repro.nn.tensor import Tensor, compute_dtype, fused_kernels, no_grad
from repro.nn.transformer import GPT2Config, GPT2Model

__all__ = [
    "PerfBenchConfig",
    "PerfBenchReport",
    "run_perfbench",
    "write_report",
    "config_hash",
]


def config_hash(config: Dict) -> str:
    """Stable 12-hex-character identity of a JSON-serialisable config dict."""
    payload = json.dumps(config, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class PerfBenchConfig:
    """Sizes and sample counts of the engine micro-benchmarks.

    The forward+backward shape matches the tier-1 model width
    (``d_model=32``, as in ``BIGCityConfig.tiny``) with a sequence long
    enough that the engine effects being measured — tape-node count,
    temporaries, the block-causal attention kernel — dominate constant
    Python overhead.  The decode shape is wider so the re-encoding baseline
    pays realistic per-step compute.
    """

    # forward+backward (fused vs composed engine path)
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 8
    batch_size: int = 2
    seq_len: int = 320
    # autoregressive decode (KV-cached vs full re-encode)
    decode_d_model: int = 64
    decode_num_heads: int = 4
    decode_prefill: int = 32
    decode_steps: int = 160
    # tokenizer encode
    tokenizer_sequences: int = 16
    # float32 vs float64 compute policy (paper-default backbone width: wide
    # enough that the step is memory/BLAS-bound rather than tape-overhead-bound)
    dtype_d_model: int = 64
    dtype_num_heads: int = 4
    dtype_seq_len: int = 256
    dtype_batch_size: int = 4
    # batched autoregressive rollout (one padded batch vs per-trajectory)
    rollout_batch: int = 8
    rollout_steps: int = 4
    # batched single-pass evaluation (one padded prompt batch vs per-case)
    recovery_batch: int = 8
    traffic_cases: int = 8
    # sharded evaluation (worker processes vs inline loop)
    eval_units: int = 6
    eval_workers: int = 4
    # online serving (continuous batching vs serial request execution)
    serving_requests: int = 24
    serving_batch: int = 8
    serving_steps: int = 2
    #: Poisson arrival rate of the open-loop latency measurement — chosen
    #: above what serial execution sustains (so batches actually fold) but
    #: below the continuous-batching capacity.
    serving_rate_hz: float = 250.0
    #: Paired samples per benchmark; each variant keeps its best sample.
    samples: int = 8
    seed: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)

    @property
    def config_id(self) -> str:
        # ``samples`` controls measurement effort, not the workload: two
        # reports that differ only in sample count measure the same thing
        # and must stay comparable.
        workload = {key: value for key, value in self.to_dict().items() if key != "samples"}
        return config_hash(workload)


@dataclass
class PerfBenchReport:
    """The measured results of one :func:`run_perfbench` invocation."""

    config: PerfBenchConfig
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "benchmark": "engine",
            "config": self.config.to_dict(),
            "config_id": self.config.config_id,
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": self.results,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def write_report(report: PerfBenchReport, path) -> Path:
    """Write ``BENCH_engine.json`` (or any path) and return it."""
    path = Path(path)
    path.write_text(report.to_json() + "\n")
    return path


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def _paired_best(
    baseline: Callable[[], None],
    optimised: Callable[[], None],
    samples: int,
) -> Dict[str, float]:
    """Best-of-``samples`` wall-clock for two alternately-sampled variants."""
    optimised()  # warm-up both: caches, allocator, first-touch
    baseline()
    best_base = best_opt = float("inf")
    for _ in range(max(samples, 1)):
        start = time.perf_counter()
        optimised()
        best_opt = min(best_opt, time.perf_counter() - start)
        start = time.perf_counter()
        baseline()
        best_base = min(best_base, time.perf_counter() - start)
    return {"baseline_s": best_base, "optimised_s": best_opt}


def _build_model(d_model: int, num_layers: int, num_heads: int, max_position: int, seed: int) -> GPT2Model:
    return GPT2Model(
        GPT2Config(
            d_model=d_model,
            num_layers=num_layers,
            num_heads=num_heads,
            max_position=max_position,
            dropout=0.0,
            seed=seed,
        )
    )


# ----------------------------------------------------------------------
# Micro-benchmarks
# ----------------------------------------------------------------------
def _synthetic_city(seed: int, sequences: int):
    """A small synthetic city shared by the data-dependent benchmarks.

    Returns ``(network, city, trajectories, traffic)`` — enough to build a
    tokenizer or a full BIGCity model.  Imported lazily so the pure-engine
    benchmarks only need :mod:`repro.nn`.
    """
    from repro.data.synthetic import SyntheticCity, SyntheticCityConfig
    from repro.roadnet.generators import grid_city

    network = grid_city(rows=4, cols=4, block_km=0.5, seed=seed)
    city = SyntheticCity(
        network,
        SyntheticCityConfig(
            num_users=4,
            trajectories_per_user=max(1, sequences // 4),
            num_days=1,
            min_route_hops=4,
            max_route_hops=10,
            seed=seed,
        ),
    )
    trajectories, traffic = city.simulate()
    return network, city, trajectories, traffic


def bench_tokenizer(config: PerfBenchConfig) -> Dict[str, float]:
    """Time ST-tokenizer ``encode_batch`` over synthetic trajectories."""
    from repro.core.config import BIGCityConfig
    from repro.core.st_unit import trajectory_to_units
    from repro.core.tokenizer import SpatioTemporalTokenizer

    network, city, trajectories, traffic = _synthetic_city(config.seed, config.tokenizer_sequences)
    tokenizer = SpatioTemporalTokenizer(
        network=network,
        time_axis=city.time_axis,
        config=BIGCityConfig.tiny(),
        traffic_states=traffic,
    )
    tokenizer.eval()
    sequences = [
        trajectory_to_units(t, traffic) for t in trajectories[: config.tokenizer_sequences]
    ]

    def run() -> None:
        with no_grad():
            tokenizer.encode_batch(sequences)

    run()
    best = float("inf")
    for _ in range(max(config.samples, 1)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "sequences": float(len(sequences)),
        "sequences_per_s": len(sequences) / best if best > 0 else float("inf"),
    }


def bench_forward_backward(config: PerfBenchConfig) -> Dict[str, float]:
    """Fused vs composed engine path on a transformer forward+backward.

    Both variants run the identical GPT-2 stack and softmax cross-entropy
    loss; the only difference is the engine path — single fused tape nodes
    (block-causal attention, fused layer-norm/GELU/linear/cross-entropy)
    against the composed multi-node formulation the engine originally used.
    The ratio is therefore exactly the engine speedup.
    """
    model = _build_model(
        config.d_model, config.num_layers, config.num_heads, max(512, config.seq_len + 8), config.seed
    )
    model.train()
    rng = np.random.default_rng(config.seed)
    embeddings = rng.standard_normal((config.batch_size, config.seq_len, config.d_model))
    targets = rng.integers(0, config.d_model, size=config.batch_size * config.seq_len)
    parameters = list(model.parameters())

    def run_once() -> None:
        for parameter in parameters:
            parameter.zero_grad()
        x = Tensor(embeddings, requires_grad=True)
        hidden = model(x)
        loss = losses.cross_entropy(hidden.reshape(-1, config.d_model), targets)
        loss.backward()

    def run_fused() -> None:
        with fused_kernels(True):
            run_once()

    def run_composed() -> None:
        with fused_kernels(False):
            run_once()

    timing = _paired_best(run_composed, run_fused, config.samples)
    composed_s, fused_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "fused_s": fused_s,
        "composed_s": composed_s,
        "speedup": composed_s / fused_s if fused_s > 0 else float("inf"),
    }


def bench_decode(config: PerfBenchConfig) -> Dict[str, float]:
    """KV-cached vs full re-encode autoregressive decoding.

    Starting from a ``decode_prefill``-token prefix, each of ``decode_steps``
    steps feeds one new embedding.  The cached path pushes only that embedding
    through the transformer (the per-layer :class:`KVCache` holds the prefix);
    the uncached path re-encodes the whole growing sequence every step, which
    is what the model layer did before this fast path existed.
    """
    length = config.decode_prefill + config.decode_steps
    model = _build_model(
        config.decode_d_model, config.num_layers, config.decode_num_heads, max(512, length + 8), config.seed
    )
    model.eval()
    rng = np.random.default_rng(config.seed)
    prefix = rng.standard_normal((1, config.decode_prefill, config.decode_d_model))
    steps = rng.standard_normal((config.decode_steps, config.decode_d_model))

    def run_cached() -> None:
        with no_grad():
            caches = model.new_caches()
            model(Tensor(prefix), caches=caches)
            for index in range(config.decode_steps):
                model(Tensor(steps[index].reshape(1, 1, -1)), caches=caches)

    def run_uncached() -> None:
        with no_grad():
            model(Tensor(prefix))
            for index in range(config.decode_steps):
                full = np.concatenate(
                    [prefix, steps[: index + 1].reshape(1, -1, config.decode_d_model)], axis=1
                )
                model(Tensor(full))

    timing = _paired_best(run_uncached, run_cached, config.samples)
    uncached_s, cached_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "cached_s": cached_s,
        "uncached_s": uncached_s,
        "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
        "steps": float(config.decode_steps),
    }


def bench_dtype_policy(config: PerfBenchConfig) -> Dict[str, float]:
    """Float32 vs float64 compute policy on a transformer forward+backward.

    The two variants run the identical fused-engine GPT-2 stack and loss; the
    only difference is the compute dtype the whole run (parameters,
    activations, gradients) lives in.  The ratio is the bandwidth win of
    halving every array — the engine is memory-bound at these sizes, so it
    should be well above 1.
    """
    rng = np.random.default_rng(config.seed)
    d_model, seq_len = config.dtype_d_model, config.dtype_seq_len
    embeddings = rng.standard_normal((config.dtype_batch_size, seq_len, d_model))
    targets = rng.integers(0, d_model, size=config.dtype_batch_size * seq_len)

    def make_runner(dtype: str) -> Callable[[], None]:
        with compute_dtype(dtype):
            model = _build_model(
                d_model, config.num_layers, config.dtype_num_heads, max(512, seq_len + 8), config.seed
            )
        model.train()
        parameters = list(model.parameters())

        def run() -> None:
            with compute_dtype(dtype):
                for parameter in parameters:
                    parameter.zero_grad()
                x = Tensor(embeddings, requires_grad=True)
                hidden = model(x)
                loss = losses.cross_entropy(hidden.reshape(-1, d_model), targets)
                loss.backward()

        return run

    timing = _paired_best(make_runner("float64"), make_runner("float32"), config.samples)
    float64_s, float32_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "float32_s": float32_s,
        "float64_s": float64_s,
        "speedup": float64_s / float32_s if float32_s > 0 else float("inf"),
    }


def bench_batched_rollout(config: PerfBenchConfig) -> Dict[str, float]:
    """One padded KV-cached batch vs per-trajectory autoregressive rollouts.

    Times ``BIGCity.rollout_next_hops_batch`` over ``rollout_batch``
    trajectories against the per-trajectory loop it replaced; both paths are
    KV-cached and decode ``rollout_steps`` segments, and both choose identical
    segments (asserted by the equivalence tests), so the ratio is purely the
    batching win.
    """
    from repro.core.config import BIGCityConfig
    from repro.core.model import BIGCity

    network, city, trajectories, traffic = _synthetic_city(config.seed, config.rollout_batch)
    model = BIGCity(
        network=network,
        time_axis=city.time_axis,
        num_users=max((t.user_id for t in trajectories), default=0) + 1,
        config=BIGCityConfig.tiny(seed=config.seed),
        traffic_states=traffic,
    )
    model.eval()
    usable = [t for t in trajectories if len(t) >= 2] or trajectories
    batch = [usable[i % len(usable)] for i in range(config.rollout_batch)]

    def run_serial() -> None:
        for trajectory in batch:
            model.rollout_next_hops(trajectory, steps=config.rollout_steps)

    def run_batched() -> None:
        model.rollout_next_hops_batch(batch, steps=config.rollout_steps)

    timing = _paired_best(run_serial, run_batched, config.samples)
    serial_s, batched_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "batched_s": batched_s,
        "serial_s": serial_s,
        "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        "trajectories": float(config.rollout_batch),
        "steps": float(config.rollout_steps),
    }


def bench_batched_recovery(config: PerfBenchConfig) -> Dict[str, float]:
    """One padded prompt batch vs per-trajectory recovery calls.

    Times ``BIGCity.recover_trajectories_batch`` over ``recovery_batch``
    masked trajectories against the per-trajectory loop it replaced.  Both
    paths assemble identical recovery prompts and run the identical backbone
    forward (single-pass, not autoregressive), so the ratio is purely the
    win of assembling ONE right-padded batch instead of one prompt at a
    time.  The random masks regularly drop trajectory endpoints, so this
    benchmark also exercises the open-sided constrained decoding fallback.
    ``identical`` records whether batched and serial recoveries matched
    bit-for-bit (they must — the batch entry point is equality-pinned).
    """
    from repro.core.config import BIGCityConfig
    from repro.core.model import BIGCity

    network, city, trajectories, traffic = _synthetic_city(config.seed, config.recovery_batch)
    model = BIGCity(
        network=network,
        time_axis=city.time_axis,
        num_users=max((t.user_id for t in trajectories), default=0) + 1,
        config=BIGCityConfig.tiny(seed=config.seed),
        traffic_states=traffic,
    )
    model.eval()
    rng = np.random.default_rng(config.seed)
    usable = [t for t in trajectories if len(t) >= 4] or trajectories
    batch = [usable[i % len(usable)] for i in range(config.recovery_batch)]
    kept_list = []
    for trajectory in batch:
        keep = max(1, len(trajectory) // 3)
        kept_list.append(np.sort(rng.choice(len(trajectory), size=keep, replace=False)))

    serial = [model.recover_trajectory(t, k) for t, k in zip(batch, kept_list)]
    batched = model.recover_trajectories_batch(batch, kept_list)
    identical = 1.0 if all(np.array_equal(s, b) for s, b in zip(serial, batched)) else 0.0

    def run_serial() -> None:
        for trajectory, kept in zip(batch, kept_list):
            model.recover_trajectory(trajectory, kept)

    def run_batched() -> None:
        model.recover_trajectories_batch(batch, kept_list)

    timing = _paired_best(run_serial, run_batched, config.samples)
    serial_s, batched_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "batched_s": batched_s,
        "serial_s": serial_s,
        "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        "trajectories": float(config.recovery_batch),
        "identical": identical,
    }


def bench_batched_traffic(config: PerfBenchConfig) -> Dict[str, float]:
    """One padded prompt batch vs per-case traffic prediction + imputation.

    Times ``BIGCity.predict_traffic_states_batch`` and
    ``BIGCity.impute_traffic_states_batch`` over ``traffic_cases`` cases each
    against the per-case loops they replaced (same single-pass prompts, same
    backbone forward).  ``identical`` records whether every batched output
    matched its serial twin bit-for-bit (they must).
    """
    from repro.core.config import BIGCityConfig
    from repro.core.model import BIGCity

    network, city, trajectories, traffic = _synthetic_city(config.seed, 8)
    model = BIGCity(
        network=network,
        time_axis=city.time_axis,
        num_users=max((t.user_id for t in trajectories), default=0) + 1,
        config=BIGCityConfig.tiny(seed=config.seed),
        traffic_states=traffic,
    )
    model.eval()
    history, horizon = 4, 2
    predict_start_max = max(traffic.num_slices - (history + horizon), 1)
    predict_cases = [
        (i % traffic.num_segments, (3 * i) % predict_start_max, history, horizon)
        for i in range(config.traffic_cases)
    ]
    length = 6
    impute_start_max = max(traffic.num_slices - length, 1)
    impute_cases = [
        (i % traffic.num_segments, (2 * i) % impute_start_max, length, (1, 3))
        for i in range(config.traffic_cases)
    ]

    serial_predictions = [model.predict_traffic_state(*case) for case in predict_cases]
    batched_predictions = model.predict_traffic_states_batch(predict_cases)
    serial_imputations = [model.impute_traffic_state(*case) for case in impute_cases]
    batched_imputations = model.impute_traffic_states_batch(impute_cases)
    identical = (
        1.0
        if all(np.array_equal(s, b) for s, b in zip(serial_predictions, batched_predictions))
        and all(np.array_equal(s, b) for s, b in zip(serial_imputations, batched_imputations))
        else 0.0
    )

    def run_serial() -> None:
        for case in predict_cases:
            model.predict_traffic_state(*case)
        for case in impute_cases:
            model.impute_traffic_state(*case)

    def run_batched() -> None:
        model.predict_traffic_states_batch(predict_cases)
        model.impute_traffic_states_batch(impute_cases)

    timing = _paired_best(run_serial, run_batched, config.samples)
    serial_s, batched_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "batched_s": batched_s,
        "serial_s": serial_s,
        "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        "cases": float(2 * config.traffic_cases),
        "identical": identical,
    }


def _sharded_eval_unit(seed: int) -> Dict[str, float]:
    """One evaluation unit of the sharded-eval benchmark (module-level so the
    worker processes can import it): build a seeded synthetic city, run a
    fresh BIGCity model over its trajectories (next-hop ranking, travel-time
    estimation, a batched rollout) and reduce the predictions to checksums.
    Deterministic given ``seed``, so serial and sharded runs must produce
    identical merged results.  Deliberately a few hundred milliseconds of
    work — the scale of one real experiment sub-unit — so per-process
    overhead is amortised the way it would be on the slow benchmark tier.
    """
    from repro.core.config import BIGCityConfig
    from repro.core.model import BIGCity

    network, city, trajectories, traffic = _synthetic_city(seed, 64)
    model = BIGCity(
        network=network,
        time_axis=city.time_axis,
        num_users=max((t.user_id for t in trajectories), default=0) + 1,
        config=BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=seed),
        traffic_states=traffic,
    )
    model.eval()
    sample = [t for t in trajectories if len(t) >= 2][:48]
    rankings = model.predict_next_hop(sample, top_k=3)
    travel_times = model.estimate_travel_time(sample)
    rollouts = model.rollout_next_hops_batch(sample[:16], steps=3)
    return {
        "seed": float(seed),
        "checksum": float(sum(int(r[0]) for r in rankings)),
        "travel_time_sum": float(np.round(travel_times.sum(), 6)),
        "rollout_checksum": float(sum(int(r[-1]) for r in rollouts)),
    }


def bench_sharded_eval(config: PerfBenchConfig) -> Dict[str, float]:
    """Worker-process sharded evaluation vs the inline serial loop.

    Fans ``eval_units`` independent evaluation units out over
    ``eval_workers`` processes through :func:`repro.eval.parallel.run_sharded`
    and times the same units run inline.  ``sharded_s`` includes creating the
    process pool — that is the cost a user really pays per
    ``run_experiments`` call.  ``identical`` records whether the merged
    results matched bit-for-bit (they must).  The speedup scales with the
    machine's core count — on a single-core box the sharded path pays process
    overhead for no parallelism, and the report says so honestly.
    """
    from repro.eval.parallel import run_sharded

    seeds = [config.seed + index for index in range(config.eval_units)]
    _sharded_eval_unit(seeds[0])  # warm imports/caches in the parent

    start = time.perf_counter()
    serial_results = run_sharded(_sharded_eval_unit, seeds, num_workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded_results = run_sharded(_sharded_eval_unit, seeds, num_workers=config.eval_workers)
    sharded_s = time.perf_counter() - start
    return {
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s > 0 else float("inf"),
        "units": float(config.eval_units),
        "workers": float(config.eval_workers),
        "identical": 1.0 if serial_results == sharded_results else 0.0,
    }


def bench_serving(config: PerfBenchConfig) -> Dict[str, float]:
    """Continuous-batched serving vs serial per-request execution.

    The same seeded mixed-task request trace (next-hop rollouts, trajectory
    recovery, traffic prediction/imputation over a synthetic city) is run
    two ways through :func:`repro.serving.loadgen.run_loadgen`:

    * an **instantaneous backlog** — every request submitted at t=0 — which
      measures peak continuous-batching throughput against the serial
      baseline (the same trace executed one request at a time through the
      shared execution helper); this is the gated ``speedup``;
    * a **Poisson open-loop run** at ``serving_rate_hz``, which yields the
      client-visible latency percentiles, batch-occupancy histogram and
      queue depths under realistic arrivals.

    ``identical`` records whether the batched results matched the serial
    results bit-for-bit in *every* run (they must — the scheduler folds
    every group of batch-compatible requests, of any kind, into one
    ``*_batch`` model call, and every batch entry point is equality-pinned).
    ``folded`` / ``fold_ratio`` report how many of the Poisson run's
    requests were answered by a folded batch call — the mixed-trace fold
    metric that shows recovery/traffic requests batching, not just
    next-hop rollouts.
    """
    from repro.core.config import BIGCityConfig
    from repro.core.model import BIGCity
    from repro.data.datasets import CityDataset, make_splits
    from repro.serving import LoadGenConfig, ServingConfig
    from repro.serving.loadgen import run_loadgen

    network, city, trajectories, traffic = _synthetic_city(config.seed, 16)
    splits = make_splits(len(trajectories), (0.5, 0.2, 0.3), seed=config.seed)
    dataset = CityDataset(
        name="serving_bench",
        network=network,
        trajectories=trajectories,
        traffic_states=traffic,
        splits=splits,
        time_axis=city.time_axis,
    )
    model = BIGCity.from_dataset(dataset, config=BIGCityConfig.tiny(seed=config.seed))
    model.eval()
    serving_config = ServingConfig(max_batch_size=config.serving_batch)
    backlog = LoadGenConfig(
        num_requests=config.serving_requests, rate_hz=None, steps=config.serving_steps, seed=config.seed
    )

    # Failure counters aggregate as a max over every run below: the fault
    # layer is at its no-op default here, so any nonzero value in any run
    # is a real regression and must show up in the report.
    failure_keys = (
        "shed",
        "retried",
        "isolated",
        "failed",
        "respawned",
        "quarantined",
        "rejected",
        "loadgen_rejected",
        "loadgen_failed",
        "loadgen_timeouts",
        "failure_rate",
    )
    failures: Dict[str, float] = {key: 0.0 for key in failure_keys}

    def observe_failures(run: Dict[str, float]) -> None:
        for key in failure_keys:
            failures[key] = max(failures[key], float(run.get(key, 0.0)))

    # Backlog drain, paired-best over a few samples: throughput comparison.
    best: Dict[str, float] = {}
    identical = 1.0
    for _ in range(max(1, min(config.samples, 3))):
        run = run_loadgen(model, dataset, backlog, serving_config)
        identical = min(identical, run["identical"])
        observe_failures(run)
        if not best or run["batched_s"] < best["batched_s"]:
            best = dict(run)
        best["serial_s"] = min(best["serial_s"], run["serial_s"])

    # Poisson open loop: latency/occupancy under realistic arrivals.
    poisson = run_loadgen(
        model,
        dataset,
        LoadGenConfig(
            num_requests=config.serving_requests,
            rate_hz=config.serving_rate_hz,
            steps=config.serving_steps,
            seed=config.seed,
        ),
        serving_config,
    )
    identical = min(identical, poisson["identical"])
    observe_failures(poisson)

    serial_s, batched_s = best["serial_s"], best["batched_s"]
    result: Dict[str, float] = {
        "requests": float(config.serving_requests),
        "serial_s": serial_s,
        "batched_s": batched_s,
        "serial_requests_per_s": config.serving_requests / serial_s if serial_s > 0 else float("inf"),
        "requests_per_s": config.serving_requests / batched_s if batched_s > 0 else float("inf"),
        "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        "identical": identical,
        "poisson_rate_hz": config.serving_rate_hz,
        "folded": float(poisson.get("folded", 0.0)),
        "fold_ratio": float(poisson.get("folded", 0.0)) / max(config.serving_requests, 1),
    }
    for key in (
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "wait_mean_s",
        "batch_occupancy_mean",
        "batch_occupancy_max",
        "queue_depth_mean",
        "queue_depth_max",
        "ticks",
    ):
        result[key] = poisson[key]
    for key, value in poisson.items():
        if key.startswith("batch_occ_"):
            result[key] = value
    result.update(failures)
    return result


def run_perfbench(
    config: Optional[PerfBenchConfig] = None,
    include: Optional[List[str]] = None,
) -> PerfBenchReport:
    """Run the engine micro-benchmarks and return the report.

    ``include`` selects a subset of ``{"tokenizer", "forward_backward",
    "decode", "dtype_policy", "batched_rollout", "batched_recovery",
    "batched_traffic", "sharded_eval", "serving"}``; the default runs all
    of them.
    """
    config = config or PerfBenchConfig()
    benches: Dict[str, Callable[[PerfBenchConfig], Dict[str, float]]] = {
        "tokenizer": bench_tokenizer,
        "forward_backward": bench_forward_backward,
        "decode": bench_decode,
        "dtype_policy": bench_dtype_policy,
        "batched_rollout": bench_batched_rollout,
        "batched_recovery": bench_batched_recovery,
        "batched_traffic": bench_batched_traffic,
        "sharded_eval": bench_sharded_eval,
        "serving": bench_serving,
    }
    selected = include if include is not None else list(benches)
    unknown = [name for name in selected if name not in benches]
    if unknown:
        raise ValueError(f"unknown benchmarks {unknown!r}; choose from {sorted(benches)}")
    report = PerfBenchReport(config=config)
    for name in selected:
        report.results[name] = benches[name](config)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.eval.perfbench [output.json]``"""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_engine.json"
    report = run_perfbench()
    path = write_report(report, output)
    for name, result in report.results.items():
        summary = ", ".join(f"{key}={value:.4g}" for key, value in sorted(result.items()))
        print(f"{name}: {summary}")
    print(f"wrote {path} (config {report.config.config_id})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
