"""Engine micro-benchmarks with config-hashed, regression-comparable output.

The fused-kernel fast path (:mod:`repro.nn.functional`) and the KV-cached
decoding path (:class:`repro.nn.attention.KVCache`) are *claimed* speedups;
this module measures them.  Each benchmark times the optimised path against
the legacy formulation it replaced — fused vs composed tape nodes for
forward+backward, cached vs full re-encode for autoregressive decode — and
the report is written as ``BENCH_engine.json`` so later PRs have a perf
trajectory to regress against (``scripts/bench_compare.py`` diffs two such
files).

Timing is *paired*: the two variants of a benchmark are sampled alternately
and each keeps its best sample, so a burst of machine noise (CPU steal on a
shared core) lands on both sides instead of skewing the ratio.

Following the conduit ``ExperimentConfig`` idiom, a report carries a stable
``config_id`` — the truncated SHA-256 of its sorted-JSON config — so two
reports are comparable exactly when their ids match.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn import losses
from repro.nn.tensor import Tensor, fused_kernels, no_grad
from repro.nn.transformer import GPT2Config, GPT2Model

__all__ = [
    "PerfBenchConfig",
    "PerfBenchReport",
    "run_perfbench",
    "write_report",
    "config_hash",
]


def config_hash(config: Dict) -> str:
    """Stable 12-hex-character identity of a JSON-serialisable config dict."""
    payload = json.dumps(config, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class PerfBenchConfig:
    """Sizes and sample counts of the engine micro-benchmarks.

    The forward+backward shape matches the tier-1 model width
    (``d_model=32``, as in ``BIGCityConfig.tiny``) with a sequence long
    enough that the engine effects being measured — tape-node count,
    temporaries, the block-causal attention kernel — dominate constant
    Python overhead.  The decode shape is wider so the re-encoding baseline
    pays realistic per-step compute.
    """

    # forward+backward (fused vs composed engine path)
    d_model: int = 32
    num_layers: int = 2
    num_heads: int = 8
    batch_size: int = 2
    seq_len: int = 320
    # autoregressive decode (KV-cached vs full re-encode)
    decode_d_model: int = 64
    decode_num_heads: int = 4
    decode_prefill: int = 32
    decode_steps: int = 160
    # tokenizer encode
    tokenizer_sequences: int = 16
    #: Paired samples per benchmark; each variant keeps its best sample.
    samples: int = 8
    seed: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)

    @property
    def config_id(self) -> str:
        # ``samples`` controls measurement effort, not the workload: two
        # reports that differ only in sample count measure the same thing
        # and must stay comparable.
        workload = {key: value for key, value in self.to_dict().items() if key != "samples"}
        return config_hash(workload)


@dataclass
class PerfBenchReport:
    """The measured results of one :func:`run_perfbench` invocation."""

    config: PerfBenchConfig
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "benchmark": "engine",
            "config": self.config.to_dict(),
            "config_id": self.config.config_id,
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "results": self.results,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def write_report(report: PerfBenchReport, path) -> Path:
    """Write ``BENCH_engine.json`` (or any path) and return it."""
    path = Path(path)
    path.write_text(report.to_json() + "\n")
    return path


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def _paired_best(
    baseline: Callable[[], None],
    optimised: Callable[[], None],
    samples: int,
) -> Dict[str, float]:
    """Best-of-``samples`` wall-clock for two alternately-sampled variants."""
    optimised()  # warm-up both: caches, allocator, first-touch
    baseline()
    best_base = best_opt = float("inf")
    for _ in range(max(samples, 1)):
        start = time.perf_counter()
        optimised()
        best_opt = min(best_opt, time.perf_counter() - start)
        start = time.perf_counter()
        baseline()
        best_base = min(best_base, time.perf_counter() - start)
    return {"baseline_s": best_base, "optimised_s": best_opt}


def _build_model(d_model: int, num_layers: int, num_heads: int, max_position: int, seed: int) -> GPT2Model:
    return GPT2Model(
        GPT2Config(
            d_model=d_model,
            num_layers=num_layers,
            num_heads=num_heads,
            max_position=max_position,
            dropout=0.0,
            seed=seed,
        )
    )


# ----------------------------------------------------------------------
# Micro-benchmarks
# ----------------------------------------------------------------------
def bench_tokenizer(config: PerfBenchConfig) -> Dict[str, float]:
    """Time ST-tokenizer ``encode_batch`` over synthetic trajectories."""
    # Imported lazily: the tokenizer benchmark needs the full data stack,
    # the engine benchmarks only repro.nn.
    from repro.core.config import BIGCityConfig
    from repro.core.st_unit import trajectory_to_units
    from repro.core.tokenizer import SpatioTemporalTokenizer
    from repro.data.synthetic import SyntheticCity, SyntheticCityConfig
    from repro.roadnet.generators import grid_city

    network = grid_city(rows=4, cols=4, block_km=0.5, seed=config.seed)
    city = SyntheticCity(
        network,
        SyntheticCityConfig(
            num_users=4,
            trajectories_per_user=max(1, config.tokenizer_sequences // 4),
            num_days=1,
            min_route_hops=4,
            max_route_hops=10,
            seed=config.seed,
        ),
    )
    trajectories, traffic = city.simulate()
    tokenizer = SpatioTemporalTokenizer(
        network=network,
        time_axis=city.time_axis,
        config=BIGCityConfig.tiny(),
        traffic_states=traffic,
    )
    tokenizer.eval()
    sequences = [
        trajectory_to_units(t, traffic) for t in trajectories[: config.tokenizer_sequences]
    ]

    def run() -> None:
        with no_grad():
            tokenizer.encode_batch(sequences)

    run()
    best = float("inf")
    for _ in range(max(config.samples, 1)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "sequences": float(len(sequences)),
        "sequences_per_s": len(sequences) / best if best > 0 else float("inf"),
    }


def bench_forward_backward(config: PerfBenchConfig) -> Dict[str, float]:
    """Fused vs composed engine path on a transformer forward+backward.

    Both variants run the identical GPT-2 stack and softmax cross-entropy
    loss; the only difference is the engine path — single fused tape nodes
    (block-causal attention, fused layer-norm/GELU/linear/cross-entropy)
    against the composed multi-node formulation the engine originally used.
    The ratio is therefore exactly the engine speedup.
    """
    model = _build_model(
        config.d_model, config.num_layers, config.num_heads, max(512, config.seq_len + 8), config.seed
    )
    model.train()
    rng = np.random.default_rng(config.seed)
    embeddings = rng.standard_normal((config.batch_size, config.seq_len, config.d_model))
    targets = rng.integers(0, config.d_model, size=config.batch_size * config.seq_len)
    parameters = list(model.parameters())

    def run_once() -> None:
        for parameter in parameters:
            parameter.zero_grad()
        x = Tensor(embeddings, requires_grad=True)
        hidden = model(x)
        loss = losses.cross_entropy(hidden.reshape(-1, config.d_model), targets)
        loss.backward()

    def run_fused() -> None:
        with fused_kernels(True):
            run_once()

    def run_composed() -> None:
        with fused_kernels(False):
            run_once()

    timing = _paired_best(run_composed, run_fused, config.samples)
    composed_s, fused_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "fused_s": fused_s,
        "composed_s": composed_s,
        "speedup": composed_s / fused_s if fused_s > 0 else float("inf"),
    }


def bench_decode(config: PerfBenchConfig) -> Dict[str, float]:
    """KV-cached vs full re-encode autoregressive decoding.

    Starting from a ``decode_prefill``-token prefix, each of ``decode_steps``
    steps feeds one new embedding.  The cached path pushes only that embedding
    through the transformer (the per-layer :class:`KVCache` holds the prefix);
    the uncached path re-encodes the whole growing sequence every step, which
    is what the model layer did before this fast path existed.
    """
    length = config.decode_prefill + config.decode_steps
    model = _build_model(
        config.decode_d_model, config.num_layers, config.decode_num_heads, max(512, length + 8), config.seed
    )
    model.eval()
    rng = np.random.default_rng(config.seed)
    prefix = rng.standard_normal((1, config.decode_prefill, config.decode_d_model))
    steps = rng.standard_normal((config.decode_steps, config.decode_d_model))

    def run_cached() -> None:
        with no_grad():
            caches = model.new_caches()
            model(Tensor(prefix), caches=caches)
            for index in range(config.decode_steps):
                model(Tensor(steps[index].reshape(1, 1, -1)), caches=caches)

    def run_uncached() -> None:
        with no_grad():
            model(Tensor(prefix))
            for index in range(config.decode_steps):
                full = np.concatenate(
                    [prefix, steps[: index + 1].reshape(1, -1, config.decode_d_model)], axis=1
                )
                model(Tensor(full))

    timing = _paired_best(run_uncached, run_cached, config.samples)
    uncached_s, cached_s = timing["baseline_s"], timing["optimised_s"]
    return {
        "cached_s": cached_s,
        "uncached_s": uncached_s,
        "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
        "steps": float(config.decode_steps),
    }


def run_perfbench(
    config: Optional[PerfBenchConfig] = None,
    include: Optional[List[str]] = None,
) -> PerfBenchReport:
    """Run the engine micro-benchmarks and return the report.

    ``include`` selects a subset of ``{"tokenizer", "forward_backward",
    "decode"}``; the default runs all three.
    """
    config = config or PerfBenchConfig()
    benches: Dict[str, Callable[[PerfBenchConfig], Dict[str, float]]] = {
        "tokenizer": bench_tokenizer,
        "forward_backward": bench_forward_backward,
        "decode": bench_decode,
    }
    selected = include if include is not None else list(benches)
    unknown = [name for name in selected if name not in benches]
    if unknown:
        raise ValueError(f"unknown benchmarks {unknown!r}; choose from {sorted(benches)}")
    report = PerfBenchReport(config=config)
    for name in selected:
        report.results[name] = benches[name](config)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.eval.perfbench [output.json]``"""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_engine.json"
    report = run_perfbench()
    path = write_report(report, output)
    for name, result in report.results.items():
        summary = ", ".join(f"{key}={value:.4g}" for key, value in sorted(result.items()))
        print(f"{name}: {summary}")
    print(f"wrote {path} (config {report.config.config_id})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
