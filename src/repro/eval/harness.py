"""Shared infrastructure for the experiment runners.

A :class:`BenchmarkProfile` fixes every knob that trades fidelity for wall
clock time (training epochs, sample caps, number of baselines).  The default
``quick`` profile keeps the whole benchmark suite in the minutes range on a
laptop CPU; selecting the ``full`` profile via the ``REPRO_BENCH_PROFILE``
environment variable runs longer schedules.

:class:`ExperimentContext` caches trained models (BIGCity, its ablated
variants, every baseline) per dataset so that different tables can share one
training run — exactly like the paper evaluates one trained BIGCity across
all eight tasks.

To regenerate several experiments at once, shard them over worker processes
with :mod:`repro.eval.parallel` (``REPRO_EVAL_WORKERS`` sets the default
worker count; each worker gets its own seeded context and the merged results
are bit-for-bit identical to a serial run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.recovery import RECOVERY_BASELINES, build_recovery_baseline
from repro.baselines.traffic import TRAFFIC_BASELINES, build_traffic_baseline
from repro.baselines.trajectory import TRAJECTORY_BASELINES, build_trajectory_baseline
from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.core.prompts import TaskType
from repro.core.training import MaskedReconstructionTrainer, PromptTuningTrainer, TrainingConfig
from repro.data.datasets import CityDataset, load_dataset


@dataclass(frozen=True)
class BenchmarkProfile:
    """Wall-clock / fidelity trade-off for the experiment harness."""

    name: str
    # BIGCity training
    stage1_epochs: int = 2
    stage2_epochs: int = 8
    batch_size: int = 8
    max_trajectories: Optional[int] = None
    traffic_sequences_per_epoch: int = 32
    hidden_dim: int = 32
    d_model: int = 64
    num_layers: int = 3
    # Baseline training
    baseline_pretrain_epochs: int = 2
    baseline_head_epochs: int = 6
    traffic_fit_windows: int = 32
    traffic_fit_epochs: int = 3
    recovery_fit_epochs: int = 2
    baseline_hidden_dim: int = 32
    # Evaluation sizes
    max_eval_samples: int = 40
    similarity_queries: int = 24
    traffic_eval_windows: int = 48
    recovery_eval_samples: int = 30
    imputation_cases: int = 24
    #: Route BIGCity recovery / traffic rows through the batched entry points
    #: (one padded model batch per evaluation instead of one call per case).
    #: The batched paths are equality-pinned against the serial ones, so this
    #: changes wall clock, not metrics.
    batched_evaluators: bool = True
    # Which baselines to include (None = all registered)
    trajectory_baselines: Optional[Tuple[str, ...]] = None
    traffic_baselines: Optional[Tuple[str, ...]] = None
    recovery_baselines: Optional[Tuple[str, ...]] = None
    seed: int = 0

    def trajectory_baseline_names(self) -> Tuple[str, ...]:
        return self.trajectory_baselines or tuple(sorted(TRAJECTORY_BASELINES))

    def traffic_baseline_names(self) -> Tuple[str, ...]:
        return self.traffic_baselines or tuple(sorted(TRAFFIC_BASELINES))

    def recovery_baseline_names(self) -> Tuple[str, ...]:
        return self.recovery_baselines or tuple(sorted(RECOVERY_BASELINES))

    def bigcity_config(self, **overrides) -> BIGCityConfig:
        config = BIGCityConfig(
            hidden_dim=self.hidden_dim,
            d_model=self.d_model,
            num_layers=self.num_layers,
            seed=self.seed,
        )
        return replace(config, **overrides) if overrides else config

    def training_config(self, **overrides) -> TrainingConfig:
        config = TrainingConfig(
            stage1_epochs=self.stage1_epochs,
            stage2_epochs=self.stage2_epochs,
            batch_size=self.batch_size,
            max_trajectories=self.max_trajectories,
            traffic_sequences_per_epoch=self.traffic_sequences_per_epoch,
            seed=self.seed,
        )
        return replace(config, **overrides) if overrides else config


QUICK_PROFILE = BenchmarkProfile(name="quick")

FULL_PROFILE = BenchmarkProfile(
    name="full",
    stage1_epochs=3,
    stage2_epochs=14,
    max_trajectories=None,
    traffic_sequences_per_epoch=64,
    baseline_pretrain_epochs=3,
    baseline_head_epochs=10,
    traffic_fit_windows=64,
    traffic_fit_epochs=5,
    recovery_fit_epochs=3,
    max_eval_samples=80,
    similarity_queries=48,
    traffic_eval_windows=96,
    recovery_eval_samples=60,
    imputation_cases=48,
)

#: A deliberately tiny profile for the unit/integration tests of the harness itself.
SMOKE_PROFILE = BenchmarkProfile(
    name="smoke",
    stage1_epochs=1,
    stage2_epochs=1,
    max_trajectories=24,
    traffic_sequences_per_epoch=6,
    hidden_dim=16,
    d_model=32,
    num_layers=2,
    baseline_pretrain_epochs=1,
    baseline_head_epochs=1,
    traffic_fit_windows=8,
    traffic_fit_epochs=1,
    recovery_fit_epochs=1,
    baseline_hidden_dim=16,
    max_eval_samples=10,
    similarity_queries=8,
    traffic_eval_windows=10,
    recovery_eval_samples=8,
    imputation_cases=6,
    trajectory_baselines=("traj2vec", "start"),
    traffic_baselines=("dcrnn", "gwnet"),
    recovery_baselines=("linear_hmm", "mtrajrec"),
)

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE, "smoke": SMOKE_PROFILE}


def get_profile(name: Optional[str] = None) -> BenchmarkProfile:
    """Resolve a profile by name or from ``REPRO_BENCH_PROFILE`` (default quick)."""
    name = name or os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in _PROFILES:
        raise KeyError(f"unknown benchmark profile {name!r}; available: {sorted(_PROFILES)}")
    return _PROFILES[name]


class ExperimentContext:
    """Caches datasets and trained models shared across experiment runners."""

    def __init__(self, profile: Optional[BenchmarkProfile] = None) -> None:
        self.profile = profile or get_profile()
        self._datasets: Dict[str, CityDataset] = {}
        self._bigcity: Dict[Tuple[str, str], BIGCity] = {}
        self._bigcity_logs: Dict[Tuple[str, str], Dict] = {}
        self._trajectory_baselines: Dict[Tuple[str, str], object] = {}
        self._traffic_baselines: Dict[Tuple[str, str], object] = {}
        self._recovery_baselines: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    def dataset(self, name: str) -> CityDataset:
        if name not in self._datasets:
            self._datasets[name] = load_dataset(name, seed=self.profile.seed)
        return self._datasets[name]

    # ------------------------------------------------------------------
    def bigcity(
        self,
        dataset_name: str,
        variant: str = "default",
        config_overrides: Optional[Dict] = None,
        training_overrides: Optional[Dict] = None,
        tasks: Optional[Sequence[TaskType]] = None,
    ) -> BIGCity:
        """Train (or fetch) a BIGCity model for a dataset and variant.

        ``variant`` names ablations / sweeps (e.g. ``"wo_dyn"``, ``"rank4"``)
        so they are cached independently of the default model.
        """
        key = (dataset_name, variant)
        if key in self._bigcity:
            return self._bigcity[key]
        dataset = self.dataset(dataset_name)
        config = self.profile.bigcity_config(**(config_overrides or {}))
        training = self.profile.training_config(**(training_overrides or {}))
        model = BIGCity.from_dataset(dataset, config=config)
        stage1 = MaskedReconstructionTrainer(model, dataset, training)
        stage1_logs = stage1.train()
        stage2 = PromptTuningTrainer(model, dataset, training, tasks=tasks)
        stage2_logs = stage2.train()
        model.eval()
        self._bigcity[key] = model
        self._bigcity_logs[key] = {"stage1": stage1_logs, "stage2": stage2_logs}
        return model

    def bigcity_logs(self, dataset_name: str, variant: str = "default") -> Dict:
        return self._bigcity_logs.get((dataset_name, variant), {})

    # ------------------------------------------------------------------
    def trajectory_baseline(self, name: str, dataset_name: str):
        key = (name, dataset_name)
        if key in self._trajectory_baselines:
            return self._trajectory_baselines[key]
        dataset = self.dataset(dataset_name)
        profile = self.profile
        baseline = build_trajectory_baseline(name, dataset, hidden_dim=profile.baseline_hidden_dim, seed=profile.seed)
        baseline.pretrain(epochs=profile.baseline_pretrain_epochs)
        baseline.fit_next_hop(epochs=profile.baseline_head_epochs)
        baseline.fit_travel_time(epochs=profile.baseline_head_epochs)
        target = "user" if dataset.has_dynamic_features else "pattern"
        baseline.fit_classifier(target, epochs=profile.baseline_head_epochs)
        self._trajectory_baselines[key] = baseline
        return baseline

    def traffic_baseline(self, name: str, dataset_name: str, history: int = 6, horizon: int = 6):
        key = (name, dataset_name)
        if key in self._traffic_baselines:
            return self._traffic_baselines[key]
        dataset = self.dataset(dataset_name)
        profile = self.profile
        baseline = build_traffic_baseline(
            name, dataset, history=history, horizon=horizon, hidden_dim=profile.baseline_hidden_dim, seed=profile.seed
        )
        baseline.fit(num_windows=profile.traffic_fit_windows, epochs=profile.traffic_fit_epochs)
        baseline.fit_imputation(num_windows=max(profile.traffic_fit_windows // 2, 8), epochs=profile.traffic_fit_epochs)
        self._traffic_baselines[key] = baseline
        return baseline

    def recovery_baseline(self, name: str, dataset_name: str):
        key = (name, dataset_name)
        if key in self._recovery_baselines:
            return self._recovery_baselines[key]
        dataset = self.dataset(dataset_name)
        baseline = build_recovery_baseline(name, dataset, seed=self.profile.seed)
        if name in ("mtrajrec", "rntrajrec"):
            baseline.fit(epochs=self.profile.recovery_fit_epochs)
        else:
            baseline.fit()
        self._recovery_baselines[key] = baseline
        return baseline


_GLOBAL_CONTEXT: Optional[ExperimentContext] = None


def global_context(profile: Optional[BenchmarkProfile] = None) -> ExperimentContext:
    """A process-wide shared context so pytest benchmarks reuse trained models."""
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None or (profile is not None and _GLOBAL_CONTEXT.profile.name != profile.name):
        _GLOBAL_CONTEXT = ExperimentContext(profile)
    return _GLOBAL_CONTEXT
