"""Markdown report generation for reproduction runs.

``EXPERIMENTS.md`` records, for every paper table and figure, the values the
paper reports next to what this reproduction measures.  This module builds
that kind of artefact programmatically: collect the
:class:`~repro.eval.results.ResultTable` objects a run produced, optionally
attach the paper's reference numbers, and render a single Markdown document
(or save it next to ``bench_output.txt``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.eval.results import ResultTable

__all__ = ["PaperReference", "ReproductionReport"]

PathLike = Union[str, Path]


@dataclass
class PaperReference:
    """Reference values reported by the paper for one artefact.

    ``values`` maps ``model -> metric -> value`` exactly like
    :attr:`ResultTable.rows`, so a reference can be compared cell-by-cell
    against the measured table.  ``note`` carries free-form context (dataset,
    caveats about the substitution, ...).
    """

    artefact: str
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    note: str = ""

    def best_by(self, metric: str, higher_is_better: bool = True) -> Optional[str]:
        candidates = [(model, row[metric]) for model, row in self.values.items() if metric in row]
        if not candidates:
            return None
        return max(candidates, key=lambda item: item[1] if higher_is_better else -item[1])[0]


def _markdown_table(rows: Mapping[str, Mapping[str, float]], float_format: str = "{:.3f}") -> List[str]:
    metrics: List[str] = []
    for row in rows.values():
        for metric in row:
            if metric not in metrics:
                metrics.append(metric)
    lines = ["| model | " + " | ".join(metrics) + " |", "|---" * (len(metrics) + 1) + "|"]
    for model, row in rows.items():
        cells = [float_format.format(row[m]) if m in row else "-" for m in metrics]
        lines.append(f"| {model} | " + " | ".join(cells) + " |")
    return lines


class ReproductionReport:
    """Accumulate measured tables (and paper references) into one document."""

    def __init__(self, title: str = "BIGCity reproduction report") -> None:
        self.title = title
        self._sections: List[Dict] = []

    # -- building -------------------------------------------------------------
    def add_table(
        self,
        artefact: str,
        measured: ResultTable,
        reference: Optional[PaperReference] = None,
        commentary: str = "",
    ) -> None:
        """Add one artefact (e.g. ``"Table III"``) with its measured table."""
        if not artefact:
            raise ValueError("artefact must be a non-empty identifier")
        self._sections.append(
            {
                "artefact": artefact,
                "measured": measured,
                "reference": reference,
                "commentary": commentary,
            }
        )

    def __len__(self) -> int:
        return len(self._sections)

    # -- analysis -------------------------------------------------------------
    def shape_agreement(self) -> Dict[str, bool]:
        """Per-artefact check: does the measured winner match the paper's winner?

        Only artefacts with a reference are checked; the comparison is made on
        every metric present in both tables and the artefact agrees when the
        winners match on at least half of those metrics.
        """
        agreement: Dict[str, bool] = {}
        for section in self._sections:
            reference: Optional[PaperReference] = section["reference"]
            measured: ResultTable = section["measured"]
            if reference is None:
                continue
            shared_metrics = [
                metric
                for metric in measured.metric_names
                if any(metric in row for row in reference.values.values())
            ]
            if not shared_metrics:
                continue
            matches = 0
            for metric in shared_metrics:
                higher = measured.higher_is_better.get(metric, True)
                measured_best = measured.best_by(metric)
                reference_best = reference.best_by(metric, higher_is_better=higher)
                if measured_best is not None and measured_best == reference_best:
                    matches += 1
            agreement[section["artefact"]] = matches * 2 >= len(shared_metrics)
        return agreement

    # -- rendering ------------------------------------------------------------
    def to_markdown(self, float_format: str = "{:.3f}") -> str:
        lines = [f"# {self.title}", ""]
        agreement = self.shape_agreement()
        if agreement:
            lines.append("## Shape agreement summary")
            lines.append("")
            lines.append("| artefact | winners match the paper |")
            lines.append("|---|---|")
            for artefact, agrees in agreement.items():
                lines.append(f"| {artefact} | {'yes' if agrees else 'no'} |")
            lines.append("")
        for section in self._sections:
            measured: ResultTable = section["measured"]
            reference: Optional[PaperReference] = section["reference"]
            lines.append(f"## {section['artefact']}")
            lines.append("")
            if section["commentary"]:
                lines.append(section["commentary"])
                lines.append("")
            lines.append("### Measured")
            lines.append("")
            lines.extend(_markdown_table(measured.rows, float_format))
            lines.append("")
            if reference is not None and reference.values:
                lines.append("### Paper")
                lines.append("")
                lines.extend(_markdown_table(reference.values, float_format))
                if reference.note:
                    lines.append("")
                    lines.append(f"*{reference.note}*")
                lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def to_dict(self) -> Dict:
        return {
            "title": self.title,
            "sections": [
                {
                    "artefact": section["artefact"],
                    "measured": section["measured"].to_dict(),
                    "reference": (
                        {
                            "artefact": section["reference"].artefact,
                            "values": section["reference"].values,
                            "note": section["reference"].note,
                        }
                        if section["reference"] is not None
                        else None
                    ),
                    "commentary": section["commentary"],
                }
                for section in self._sections
            ],
            "shape_agreement": self.shape_agreement(),
        }

    def save(self, path: PathLike) -> Path:
        """Write the Markdown report (and a JSON sidecar) to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown(), encoding="utf-8")
        sidecar = path.with_suffix(".json")
        sidecar.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path
