"""Text rendering of the per-task radar chart (Figure 1).

The paper's Figure 1 is a radar chart of BIGCity's normalised score on every
task.  Matplotlib is not available offline, so this module renders the same
information as plain text: one horizontal bar per axis, scaled to a reference
value of 1.0 (parity with the best task-specific baseline).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.eval.results import ResultTable

__all__ = ["render_radar", "radar_from_table"]


def render_radar(
    axes: Mapping[str, float],
    width: int = 40,
    reference: float = 1.0,
    title: Optional[str] = None,
) -> str:
    """Render one bar per radar axis.

    Parameters
    ----------
    axes:
        Mapping from axis name (task) to the normalised score; ``reference``
        (1.0 by default) marks parity with the best baseline and is drawn as
        a ``|`` tick on every bar.
    width:
        Number of character cells corresponding to ``2 * reference``; values
        above that are clipped (and annotated with their numeric value, so no
        information is lost).
    reference:
        The value rendered at the middle of the bar.

    Returns
    -------
    str
        A multi-line string; one line per axis plus an optional title and a
        legend line.
    """
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    if reference <= 0:
        raise ValueError("reference must be positive")
    if not axes:
        raise ValueError("the radar chart needs at least one axis")

    label_width = max(len(str(name)) for name in axes)
    full_scale = 2.0 * reference
    reference_cell = int(round(width * reference / full_scale))
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for name, value in axes.items():
        value = float(value)
        filled = int(round(min(max(value, 0.0), full_scale) / full_scale * width))
        cells = []
        for cell in range(width):
            if cell == reference_cell:
                cells.append("|")
            elif cell < filled:
                cells.append("#")
            else:
                cells.append(".")
        marker = " >1x" if value >= reference else ""
        lines.append(f"{str(name):>{label_width}}  [{''.join(cells)}] {value:6.3f}{marker}")
    lines.append(f"{'':>{label_width}}  ('|' marks parity with the best task-specific baseline)")
    return "\n".join(lines)


def radar_from_table(table: ResultTable, model: str = "bigcity", width: int = 40) -> str:
    """Render the radar chart for one row of a :class:`ResultTable`.

    This is the convenience wrapper used by the CLI: the table produced by
    ``run_fig1_radar`` has a single row whose columns are the radar axes.
    """
    if model not in table.rows:
        raise KeyError(f"model {model!r} not present in the table (rows: {sorted(table.rows)})")
    return render_radar(table.rows[model], width=width, title=table.title)
