"""Experiment runners: one function per table / figure of the paper.

Every runner takes an :class:`~repro.eval.harness.ExperimentContext` (which
caches trained models) plus a few knobs, and returns
:class:`~repro.eval.results.ResultTable` objects (or dictionaries of them)
whose rows mirror the corresponding paper artefact.  The benchmark files in
``benchmarks/`` call these runners and print the tables.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.similarity import CLASSICAL_SIMILARITY_MEASURES, ClassicalSimilarity
from repro.core.prompts import TaskType
from repro.core.transfer import transfer_backbone
from repro.eval.harness import BenchmarkProfile, ExperimentContext
from repro.eval.results import ResultTable
from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.recovery import TrajectoryRecoveryEvaluator
from repro.tasks.similarity import SimilaritySearchEvaluator
from repro.tasks.traffic import TrafficStateEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator

BIGCITY_NAME = "bigcity"


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def run_table2_dataset_statistics(context: ExperimentContext, dataset_names: Sequence[str] = ("bj_like", "xa_like", "cd_like")) -> ResultTable:
    """Dataset statistics in the spirit of Table II."""
    table = ResultTable(title="Table II — dataset statistics (synthetic substitutes)")
    for name in dataset_names:
        table.add_row(name, context.dataset(name).summary())
    return table


# ----------------------------------------------------------------------
# Table III — trajectory-based non-generative tasks
# ----------------------------------------------------------------------
def run_table3_trajectory_tasks(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    baselines: Optional[Sequence[str]] = None,
) -> Dict[str, ResultTable]:
    """Travel time estimation, classification, next-hop and similarity search."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    baselines = list(baselines if baselines is not None else profile.trajectory_baseline_names())
    classification_target = "user" if dataset.has_dynamic_features else "pattern"

    tte_eval = TravelTimeEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    clas_eval = TrajectoryClassificationEvaluator(
        dataset, target=classification_target, max_samples=profile.max_eval_samples, seed=profile.seed
    )
    next_eval = NextHopEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    simi_eval = SimilaritySearchEvaluator(dataset, num_queries=profile.similarity_queries, seed=profile.seed)

    tte_table = ResultTable(
        title=f"Table III ({dataset_name}) — travel time estimation",
        higher_is_better={"mae": False, "rmse": False, "mape": False},
    )
    clas_table = ResultTable(
        title=f"Table III ({dataset_name}) — trajectory classification",
        higher_is_better={key: True for key in ("acc", "f1", "auc", "micro_f1", "macro_f1", "macro_recall")},
    )
    next_table = ResultTable(
        title=f"Table III ({dataset_name}) — next hop prediction",
        higher_is_better={"acc": True, "mrr@5": True, "ndcg@5": True},
    )
    simi_table = ResultTable(
        title=f"Table III ({dataset_name}) — most similar search",
        higher_is_better={"hr@1": True, "hr@5": True, "hr@10": True, "mean_rank": False, "search_time_s": False},
    )

    for name in baselines:
        baseline = context.trajectory_baseline(name, dataset_name)
        tte_table.add_row(name, tte_eval.evaluate(baseline.predict_travel_time))
        clas_table.add_row(name, clas_eval.evaluate(baseline.predict_class, baseline.class_scores))
        next_table.add_row(name, next_eval.evaluate(baseline.predict_next_hop))
        simi_table.add_row(name, simi_eval.evaluate(embed_fn=baseline.embed))

    model = context.bigcity(dataset_name)
    tte_table.add_row(BIGCITY_NAME, tte_eval.evaluate(model.estimate_travel_time))
    clas_table.add_row(
        BIGCITY_NAME,
        clas_eval.evaluate(
            lambda ts: model.classify_trajectory(ts, target=classification_target),
            lambda ts: model.classification_scores(ts, target=classification_target),
        ),
    )
    next_table.add_row(BIGCITY_NAME, next_eval.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10)))
    # The generative view of the same task: all prefixes decode through one
    # padded KV-cached batch (rollout_next_hops_batch) instead of per-sample.
    next_table.add_row(BIGCITY_NAME, next_eval.evaluate_rollout(model.rollout_next_hops_batch))
    simi_table.add_row(BIGCITY_NAME, simi_eval.evaluate(embed_fn=model.trajectory_embeddings))

    return {"travel_time": tte_table, "classification": clas_table, "next_hop": next_table, "similarity": simi_table}


# ----------------------------------------------------------------------
# Table IV — trajectory recovery
# ----------------------------------------------------------------------
def run_table4_recovery(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    mask_ratios: Sequence[float] = (0.85, 0.90, 0.95),
    baselines: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Trajectory recovery accuracy / macro-F1 at several mask ratios."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    baselines = list(baselines if baselines is not None else profile.recovery_baseline_names())
    table = ResultTable(
        title=f"Table IV ({dataset_name}) — trajectory recovery",
        higher_is_better={},
    )
    evaluators = {
        ratio: TrajectoryRecoveryEvaluator(
            dataset, mask_ratio=ratio, max_samples=profile.recovery_eval_samples, seed=profile.seed
        )
        for ratio in mask_ratios
    }
    for metric_ratio in mask_ratios:
        table.higher_is_better[f"acc@{int(metric_ratio * 100)}"] = True
        table.higher_is_better[f"f1@{int(metric_ratio * 100)}"] = True

    def add_method(name: str, recover_fn, recover_batch_fn=None) -> None:
        metrics: Dict[str, float] = {}
        for ratio, evaluator in evaluators.items():
            if recover_batch_fn is not None and profile.batched_evaluators:
                result = evaluator.evaluate_batch(recover_batch_fn)
            else:
                result = evaluator.evaluate(recover_fn)
            metrics[f"acc@{int(ratio * 100)}"] = result["accuracy"]
            metrics[f"f1@{int(ratio * 100)}"] = result["macro_f1"]
        table.add_row(name, metrics)

    for name in baselines:
        baseline = context.recovery_baseline(name, dataset_name)
        add_method(name, baseline.recover)

    model = context.bigcity(dataset_name)
    add_method(BIGCITY_NAME, model.recover_trajectory, model.recover_trajectories_batch)
    return table


# ----------------------------------------------------------------------
# Table V — traffic-state tasks
# ----------------------------------------------------------------------
def run_table5_traffic_state(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    history: int = 6,
    horizon: int = 6,
    baselines: Optional[Sequence[str]] = None,
) -> Dict[str, ResultTable]:
    """One-step / multi-step traffic-state prediction and imputation."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    baselines = list(baselines if baselines is not None else profile.traffic_baseline_names())
    evaluator = TrafficStateEvaluator(
        dataset, history=history, horizon=horizon, max_windows=profile.traffic_eval_windows, seed=profile.seed
    )
    lower = {"mae": False, "mape": False, "rmse": False}
    one_step = ResultTable(title=f"Table V ({dataset_name}) — one-step prediction", higher_is_better=lower)
    multi_step = ResultTable(title=f"Table V ({dataset_name}) — multi-step prediction", higher_is_better=lower)
    imputation = ResultTable(title=f"Table V ({dataset_name}) — traffic state imputation", higher_is_better=lower)

    for name in baselines:
        baseline = context.traffic_baseline(name, dataset_name, history=history, horizon=horizon)
        one_step.add_row(name, evaluator.evaluate_prediction(baseline.predict, horizon=1))
        multi_step.add_row(name, evaluator.evaluate_prediction(baseline.predict, horizon=horizon))
        imputation.add_row(
            name, evaluator.evaluate_imputation(baseline.impute, max_cases=profile.imputation_cases)
        )

    model = context.bigcity(dataset_name)
    if profile.batched_evaluators:
        one_step.add_row(BIGCITY_NAME, evaluator.evaluate_prediction_batch(model.predict_traffic_states_batch, horizon=1))
        multi_step.add_row(
            BIGCITY_NAME, evaluator.evaluate_prediction_batch(model.predict_traffic_states_batch, horizon=horizon)
        )
        imputation.add_row(
            BIGCITY_NAME,
            evaluator.evaluate_imputation_batch(model.impute_traffic_states_batch, max_cases=profile.imputation_cases),
        )
    else:
        one_step.add_row(BIGCITY_NAME, evaluator.evaluate_prediction(model.predict_traffic_state, horizon=1))
        multi_step.add_row(BIGCITY_NAME, evaluator.evaluate_prediction(model.predict_traffic_state, horizon=horizon))
        imputation.add_row(
            BIGCITY_NAME, evaluator.evaluate_imputation(model.impute_traffic_state, max_cases=profile.imputation_cases)
        )
    return {"one_step": one_step, "multi_step": multi_step, "imputation": imputation}


# ----------------------------------------------------------------------
# Table VI — cross-city generalisation
# ----------------------------------------------------------------------
def run_table6_generalization(
    context: ExperimentContext,
    source_dataset: str = "bj_like",
    target_datasets: Sequence[str] = ("xa_like", "cd_like"),
) -> ResultTable:
    """Transfer the backbone trained on the source city to the target cities."""
    profile = context.profile
    table = ResultTable(
        title=f"Table VI — generalisation from {source_dataset}",
        higher_is_better={
            "tte_mae": False,
            "tte_rmse": False,
            "next_acc": True,
            "next_mrr@5": True,
            "clas_micro_f1": True,
            "clas_macro_f1": True,
        },
    )
    source_model = context.bigcity(source_dataset)
    for target_name in target_datasets:
        dataset = context.dataset(target_name)
        classification_target = "user" if dataset.has_dynamic_features else "pattern"
        tte_eval = TravelTimeEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
        next_eval = NextHopEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
        clas_eval = TrajectoryClassificationEvaluator(
            dataset, target=classification_target, max_samples=profile.max_eval_samples, seed=profile.seed
        )

        def evaluate(model) -> Dict[str, float]:
            tte = tte_eval.evaluate(model.estimate_travel_time)
            nxt = next_eval.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
            cls = clas_eval.evaluate(
                lambda ts: model.classify_trajectory(ts, target=classification_target),
                lambda ts: model.classification_scores(ts, target=classification_target),
            )
            return {
                "tte_mae": tte["mae"],
                "tte_rmse": tte["rmse"],
                "next_acc": nxt["acc"],
                "next_mrr@5": nxt["mrr@5"],
                "clas_micro_f1": cls.get("micro_f1", cls.get("acc", 0.0)),
                "clas_macro_f1": cls.get("macro_f1", cls.get("f1", 0.0)),
            }

        native = context.bigcity(target_name)
        table.add_row(f"{target_name}/native", evaluate(native))
        transferred, _ = transfer_backbone(
            source_model,
            dataset,
            training_config=profile.training_config(stage2_epochs=1),
            finetune_epochs=1,
        )
        table.add_row(f"{target_name}/transferred", evaluate(transferred))
    return table


# ----------------------------------------------------------------------
# Table VII — ablations on model designs
# ----------------------------------------------------------------------
ABLATION_VARIANTS: Dict[str, Dict] = {
    "full": {},
    "wo_dyn": {"use_dynamic_encoder": False},
    "wo_sta": {"use_static_encoder": False},
    "wo_fus": {"use_fusion": False},
    "wo_pro": {"use_prompts": False},
}


def run_table7_design_ablations(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    variants: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Ablate the dynamic/static encoders, the fusion module and the prompts."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    variants = list(variants if variants is not None else ABLATION_VARIANTS)
    table = ResultTable(
        title=f"Table VII ({dataset_name}) — design ablations",
        higher_is_better={
            "tte_mae": False,
            "clas_macro_f1": True,
            "next_acc": True,
            "simi_hr@10": True,
            "reco_acc": True,
            "multi_step_mape": False,
        },
    )
    classification_target = "user" if dataset.has_dynamic_features else "pattern"
    tte_eval = TravelTimeEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    clas_eval = TrajectoryClassificationEvaluator(
        dataset, target=classification_target, max_samples=profile.max_eval_samples, seed=profile.seed
    )
    next_eval = NextHopEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    simi_eval = SimilaritySearchEvaluator(dataset, num_queries=profile.similarity_queries, seed=profile.seed)
    reco_eval = TrajectoryRecoveryEvaluator(
        dataset, mask_ratio=0.85, max_samples=profile.recovery_eval_samples, seed=profile.seed
    )
    traffic_eval = TrafficStateEvaluator(
        dataset, history=6, horizon=6, max_windows=profile.traffic_eval_windows, seed=profile.seed
    ) if dataset.has_dynamic_features else None

    # All ablation variants (including the full reference) share a shortened
    # stage-2 schedule so the sweep stays affordable; comparisons inside the
    # table remain apples-to-apples.
    shortened = {"stage2_epochs": max(2, profile.stage2_epochs // 2)}
    for variant in variants:
        overrides = ABLATION_VARIANTS[variant]
        model = context.bigcity(
            dataset_name,
            variant=f"ablation_{variant}",
            config_overrides=overrides,
            training_overrides=shortened,
        )
        if profile.batched_evaluators:
            reco_acc = reco_eval.evaluate_batch(model.recover_trajectories_batch)["accuracy"]
        else:
            reco_acc = reco_eval.evaluate(model.recover_trajectory)["accuracy"]
        row = {
            "tte_mae": tte_eval.evaluate(model.estimate_travel_time)["mae"],
            "clas_macro_f1": clas_eval.evaluate(
                lambda ts: model.classify_trajectory(ts, target=classification_target)
            ).get("macro_f1", 0.0),
            "next_acc": next_eval.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))["acc"],
            "simi_hr@10": simi_eval.evaluate(embed_fn=model.trajectory_embeddings)["hr@10"],
            "reco_acc": reco_acc,
        }
        if traffic_eval is not None and model.config.use_dynamic_encoder:
            if profile.batched_evaluators:
                row["multi_step_mape"] = traffic_eval.evaluate_prediction_batch(
                    model.predict_traffic_states_batch, horizon=6
                )["mape"]
            else:
                row["multi_step_mape"] = traffic_eval.evaluate_prediction(model.predict_traffic_state, horizon=6)["mape"]
        table.add_row(variant, row)
    return table


# ----------------------------------------------------------------------
# Table VIII — ablations on multi-task co-training
# ----------------------------------------------------------------------
COTRAINING_TASK_SETS: Dict[str, Tuple[TaskType, ...]] = {
    "next_only": (TaskType.NEXT_HOP,),
    "tte_only": (TaskType.TRAVEL_TIME,),
    "ms_only": (TaskType.TRAFFIC_MULTI_STEP,),
    "ms+next": (TaskType.TRAFFIC_MULTI_STEP, TaskType.NEXT_HOP),
    "tte+next": (TaskType.TRAVEL_TIME, TaskType.NEXT_HOP),
    "all": (TaskType.NEXT_HOP, TaskType.TRAVEL_TIME, TaskType.TRAFFIC_MULTI_STEP),
}


def run_table8_cotraining_ablations(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    task_sets: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Co-train on subsets of {next hop, TTE, multi-step} and compare."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    task_sets = list(task_sets if task_sets is not None else COTRAINING_TASK_SETS)
    table = ResultTable(
        title=f"Table VIII ({dataset_name}) — multi-task co-training ablation",
        higher_is_better={"next_acc": True, "tte_mae": False, "ms_mape": False},
    )
    next_eval = NextHopEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    tte_eval = TravelTimeEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    traffic_eval = TrafficStateEvaluator(
        dataset, history=6, horizon=6, max_windows=profile.traffic_eval_windows, seed=profile.seed
    ) if dataset.has_dynamic_features else None

    shortened = {"stage2_epochs": max(2, profile.stage2_epochs // 2)}
    for set_name in task_sets:
        tasks = COTRAINING_TASK_SETS[set_name]
        model = context.bigcity(
            dataset_name,
            variant=f"cotrain_{set_name}",
            tasks=tasks,
            training_overrides=shortened,
        )
        row: Dict[str, float] = {}
        if TaskType.NEXT_HOP in tasks:
            row["next_acc"] = next_eval.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))["acc"]
        if TaskType.TRAVEL_TIME in tasks:
            row["tte_mae"] = tte_eval.evaluate(model.estimate_travel_time)["mae"]
        if TaskType.TRAFFIC_MULTI_STEP in tasks and traffic_eval is not None:
            if profile.batched_evaluators:
                row["ms_mape"] = traffic_eval.evaluate_prediction_batch(model.predict_traffic_states_batch, horizon=6)["mape"]
            else:
                row["ms_mape"] = traffic_eval.evaluate_prediction(model.predict_traffic_state, horizon=6)["mape"]
        table.add_row(set_name, row)
    return table


# ----------------------------------------------------------------------
# Table IX — training efficiency
# ----------------------------------------------------------------------
def run_table9_efficiency(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    baselines: Sequence[str] = ("traj2vec", "toast", "start"),
) -> ResultTable:
    """Parameter footprint and per-epoch training time of BIGCity vs two-stage baselines."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    table = ResultTable(
        title=f"Table IX ({dataset_name}) — efficiency",
        higher_is_better={
            "parameters": False,
            "trainable_parameters": False,
            "stage1_s_per_epoch": False,
            "stage2_s_per_epoch": False,
        },
    )
    for name in baselines:
        baseline = context.trajectory_baseline(name, dataset_name)
        start = time.perf_counter()
        baseline.pretrain(epochs=1)
        stage1_time = time.perf_counter() - start
        start = time.perf_counter()
        baseline.fit_travel_time(epochs=1)
        stage2_time = time.perf_counter() - start
        table.add_row(
            name,
            {
                "parameters": baseline.num_parameters(),
                "trainable_parameters": baseline.num_parameters(trainable_only=True),
                "stage1_s_per_epoch": stage1_time,
                "stage2_s_per_epoch": stage2_time,
            },
        )

    model = context.bigcity(dataset_name)
    logs = context.bigcity_logs(dataset_name)
    stage1_logs = logs.get("stage1", [])
    stage2_logs = logs.get("stage2", [])
    summary = model.parameter_summary()
    table.add_row(
        BIGCITY_NAME,
        {
            "parameters": summary["total"],
            "trainable_parameters": summary["trainable"],
            "stage1_s_per_epoch": float(np.mean([log.seconds for log in stage1_logs])) if stage1_logs else 0.0,
            "stage2_s_per_epoch": float(np.mean([log.seconds for log in stage2_logs])) if stage2_logs else 0.0,
        },
    )
    return table


# ----------------------------------------------------------------------
# Figure 1 — task radar chart
# ----------------------------------------------------------------------
def run_fig1_radar(context: ExperimentContext, dataset_name: str = "xa_like") -> ResultTable:
    """Normalised per-task score of BIGCity against the best baseline.

    Values are BIGCity's score divided by the best baseline score for
    higher-is-better metrics (and inverted for errors), so a value above 1.0
    means BIGCity wins that axis of the radar chart.
    """
    tables = run_table3_trajectory_tasks(context, dataset_name)
    recovery = run_table4_recovery(context, dataset_name, mask_ratios=(0.85,))
    dataset = context.dataset(dataset_name)
    axes: Dict[str, float] = {}

    def relative(table: ResultTable, metric: str) -> float:
        bigcity_value = table.value(BIGCITY_NAME, metric)
        baseline_values = [
            row[metric] for model, row in table.rows.items() if model != BIGCITY_NAME and metric in row
        ]
        if bigcity_value is None or not baseline_values:
            return 1.0
        higher = table.higher_is_better.get(metric, True)
        best_baseline = max(baseline_values) if higher else min(baseline_values)
        if higher:
            return bigcity_value / max(best_baseline, 1e-9)
        return best_baseline / max(bigcity_value, 1e-9)

    axes["travel_time"] = relative(tables["travel_time"], "mae")
    clas_metric = "macro_f1" if dataset.has_dynamic_features else "f1"
    axes["classification"] = relative(tables["classification"], clas_metric)
    axes["next_hop"] = relative(tables["next_hop"], "acc")
    axes["similarity"] = relative(tables["similarity"], "hr@5")
    axes["recovery"] = relative(recovery, "acc@85")
    if dataset.has_dynamic_features:
        traffic = run_table5_traffic_state(context, dataset_name)
        axes["one_step"] = relative(traffic["one_step"], "mae")
        axes["multi_step"] = relative(traffic["multi_step"], "mae")
        axes["imputation"] = relative(traffic["imputation"], "mae")

    table = ResultTable(title=f"Figure 1 ({dataset_name}) — radar chart (BIGCity / best baseline)")
    table.add_row(BIGCITY_NAME, axes)
    return table


# ----------------------------------------------------------------------
# Figure 5 — LoRA parameter sensitivity
# ----------------------------------------------------------------------
def run_fig5_lora_sensitivity(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    ranks: Sequence[int] = (4, 8, 16),
    coverages: Sequence[float] = (1.0, 0.5),
) -> ResultTable:
    """Sweep the LoRA rank ``r`` and module coverage ``n`` (Fig. 5)."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    table = ResultTable(
        title=f"Figure 5 ({dataset_name}) — LoRA sensitivity",
        higher_is_better={"tte_mae": False, "tte_rmse": False, "next_acc": True, "next_mrr@5": True, "simi_hr@1": True, "simi_hr@5": True},
    )
    tte_eval = TravelTimeEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    next_eval = NextHopEvaluator(dataset, max_samples=profile.max_eval_samples, seed=profile.seed)
    simi_eval = SimilaritySearchEvaluator(dataset, num_queries=profile.similarity_queries, seed=profile.seed)

    shortened = {"stage2_epochs": max(2, profile.stage2_epochs // 2)}
    for coverage in coverages:
        for rank in ranks:
            variant = f"lora_r{rank}_n{coverage:g}"
            model = context.bigcity(
                dataset_name,
                variant=variant,
                config_overrides={"lora_rank": rank, "lora_coverage": coverage},
                training_overrides=shortened,
            )
            tte = tte_eval.evaluate(model.estimate_travel_time)
            nxt = next_eval.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
            simi = simi_eval.evaluate(embed_fn=model.trajectory_embeddings)
            table.add_row(
                variant,
                {
                    "tte_mae": tte["mae"],
                    "tte_rmse": tte["rmse"],
                    "next_acc": nxt["acc"],
                    "next_mrr@5": nxt["mrr@5"],
                    "simi_hr@1": simi["hr@1"],
                    "simi_hr@5": simi["hr@5"],
                },
            )
    return table


# ----------------------------------------------------------------------
# Figure 6 — efficiency and scalability
# ----------------------------------------------------------------------
def run_fig6_scalability(
    context: ExperimentContext,
    dataset_name: str = "xa_like",
    database_sizes: Sequence[int] = (10, 40, 80),
    embedding_batch_sizes: Sequence[int] = (50, 100, 200),
    classical_measures: Sequence[str] = ("dtw", "lcss", "frechet", "edr"),
    embedding_baselines: Sequence[str] = ("toast", "start"),
) -> Dict[str, ResultTable]:
    """Inference time vs data size (Fig. 6a) and search scalability (Fig. 6b/c)."""
    profile = context.profile
    dataset = context.dataset(dataset_name)
    model = context.bigcity(dataset_name)

    # --- Fig. 6a: representation/inference time as the input grows ------------
    inference = ResultTable(
        title=f"Figure 6a ({dataset_name}) — inference time vs input size (seconds)",
        higher_is_better={},
    )
    pool = dataset.trajectories
    for size in embedding_batch_sizes:
        inference.higher_is_better[f"n={size}"] = False
    rows: Dict[str, Dict[str, float]] = {BIGCITY_NAME: {}}
    for name in embedding_baselines:
        rows[name] = {}
    for size in embedding_batch_sizes:
        sample = [pool[i % len(pool)] for i in range(size)]
        start = time.perf_counter()
        model.trajectory_embeddings(sample)
        rows[BIGCITY_NAME][f"n={size}"] = time.perf_counter() - start
        for name in embedding_baselines:
            baseline = context.trajectory_baseline(name, dataset_name)
            start = time.perf_counter()
            baseline.embed(sample)
            rows[name][f"n={size}"] = time.perf_counter() - start
    for name, metrics in rows.items():
        inference.add_row(name, metrics)

    # --- Fig. 6b/c: search time and mean rank as the database grows -----------
    search_time = ResultTable(
        title=f"Figure 6b ({dataset_name}) — similarity search time (seconds)", higher_is_better={}
    )
    mean_rank = ResultTable(
        title=f"Figure 6c ({dataset_name}) — similarity search mean rank", higher_is_better={}
    )
    for size in database_sizes:
        search_time.higher_is_better[f"db={size}"] = False
        mean_rank.higher_is_better[f"db={size}"] = False

    methods: Dict[str, Dict[str, float]] = {}
    for size in database_sizes:
        num_queries = max(4, size // 10)
        extra_needed = max(size - num_queries, 0)
        extra = [pool[i % len(pool)] for i in range(extra_needed)]
        evaluator = SimilaritySearchEvaluator(
            dataset, num_queries=num_queries, seed=profile.seed, extra_database=extra
        )
        candidates = {BIGCITY_NAME: {"embed_fn": model.trajectory_embeddings}}
        for name in embedding_baselines:
            candidates[name] = {"embed_fn": context.trajectory_baseline(name, dataset_name).embed}
        for measure in classical_measures:
            candidates[measure] = {"distance_fn": ClassicalSimilarity(dataset.network, measure)}
        for method, kwargs in candidates.items():
            result = evaluator.evaluate(**kwargs)
            methods.setdefault(method, {})[f"db={size}"] = result["search_time_s"]
            methods.setdefault(f"{method}__rank", {})[f"db={size}"] = result["mean_rank"]
    for method in list(methods):
        if method.endswith("__rank"):
            mean_rank.add_row(method[: -len("__rank")], methods[method])
        else:
            search_time.add_row(method, methods[method])

    return {"inference_time": inference, "search_time": search_time, "mean_rank": mean_rank}
