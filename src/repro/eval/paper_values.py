"""Reference values reported by the paper, for paper-vs-measured reports.

The numbers below are transcribed from the paper's evaluation section
(Tables III–VI, XA dataset unless stated otherwise) and packaged as
:class:`~repro.eval.report.PaperReference` objects so that
:func:`build_reproduction_report` can place them next to the values measured
by this reproduction.  Only the headline columns used in ``EXPERIMENTS.md``
are transcribed; the full tables are in the paper itself.

Model keys follow the names used by the experiment runners (``bigcity``,
``start``, ``jgrm``, ``dcrnn``, ...), so the measured and reference tables
can be compared row by row.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.eval.report import PaperReference, ReproductionReport

__all__ = ["PAPER_REFERENCES", "get_reference", "build_reproduction_report"]


PAPER_REFERENCES: Dict[str, PaperReference] = {
    "table3_travel_time": PaperReference(
        artefact="Table III (XA) — travel time estimation",
        values={
            "traj2vec": {"mae": 2.051, "rmse": 3.147, "mape": 35.14},
            "t2vec": {"mae": 2.035, "rmse": 3.132, "mape": 33.73},
            "trembr": {"mae": 2.016, "rmse": 3.121, "mape": 32.13},
            "toast": {"mae": 2.152, "rmse": 3.266, "mape": 33.93},
            "jclrnt": {"mae": 2.173, "rmse": 3.257, "mape": 33.12},
            "start": {"mae": 1.833, "rmse": 2.982, "mape": 30.57},
            "jgrm": {"mae": 1.915, "rmse": 3.152, "mape": 31.88},
            "bigcity": {"mae": 1.723, "rmse": 2.614, "mape": 29.76},
        },
        note="XA dataset; MAE/RMSE in minutes, MAPE in percent.",
    ),
    "table3_classification": PaperReference(
        artefact="Table III (XA) — trajectory classification (user linkage)",
        values={
            "traj2vec": {"micro_f1": 0.086, "macro_f1": 0.085},
            "t2vec": {"micro_f1": 0.086, "macro_f1": 0.082},
            "trembr": {"micro_f1": 0.091, "macro_f1": 0.088},
            "toast": {"micro_f1": 0.099, "macro_f1": 0.095},
            "jclrnt": {"micro_f1": 0.093, "macro_f1": 0.091},
            "start": {"micro_f1": 0.101, "macro_f1": 0.098},
            "jgrm": {"micro_f1": 0.097, "macro_f1": 0.094},
            "bigcity": {"micro_f1": 0.112, "macro_f1": 0.104},
        },
        note="XA dataset; user-trajectory linkage restricted to users with >= 50 trajectories.",
    ),
    "table3_next_hop": PaperReference(
        artefact="Table III (XA) — next hop prediction",
        values={
            "traj2vec": {"acc": 0.679, "mrr@5": 0.759, "ndcg@5": 0.788},
            "t2vec": {"acc": 0.672, "mrr@5": 0.747, "ndcg@5": 0.774},
            "trembr": {"acc": 0.568, "mrr@5": 0.633, "ndcg@5": 0.657},
            "toast": {"acc": 0.778, "mrr@5": 0.887, "ndcg@5": 0.913},
            "jclrnt": {"acc": 0.793, "mrr@5": 0.889, "ndcg@5": 0.919},
            "start": {"acc": 0.825, "mrr@5": 0.903, "ndcg@5": 0.928},
            "jgrm": {"acc": 0.829, "mrr@5": 0.906, "ndcg@5": 0.934},
            "bigcity": {"acc": 0.837, "mrr@5": 0.923, "ndcg@5": 0.942},
        },
        note="XA dataset.",
    ),
    "table3_similarity": PaperReference(
        artefact="Table III (XA) — most similar trajectory search",
        values={
            "traj2vec": {"hr@1": 0.673, "hr@5": 0.854, "hr@10": 0.889},
            "t2vec": {"hr@1": 0.733, "hr@5": 0.821, "hr@10": 0.877},
            "trembr": {"hr@1": 0.538, "hr@5": 0.670, "hr@10": 0.725},
            "toast": {"hr@1": 0.283, "hr@5": 0.393, "hr@10": 0.442},
            "jclrnt": {"hr@1": 0.335, "hr@5": 0.551, "hr@10": 0.634},
            "start": {"hr@1": 0.741, "hr@5": 0.883, "hr@10": 0.893},
            "jgrm": {"hr@1": 0.703, "hr@5": 0.826, "hr@10": 0.863},
            "bigcity": {"hr@1": 0.791, "hr@5": 0.887, "hr@10": 0.909},
        },
        note="XA dataset.",
    ),
    "table4_recovery": PaperReference(
        artefact="Table IV (XA) — trajectory recovery accuracy",
        values={
            "linear_hmm": {"acc@85": 0.275, "acc@90": 0.239, "acc@95": 0.207},
            "dthr_hmm": {"acc@85": 0.269, "acc@90": 0.218, "acc@95": 0.201},
            "mtrajrec": {"acc@85": 0.495, "acc@90": 0.443, "acc@95": 0.338},
            "rntrajrec": {"acc@85": 0.503, "acc@90": 0.456, "acc@95": 0.359},
            "bigcity": {"acc@85": 0.562, "acc@90": 0.489, "acc@95": 0.381},
        },
        note="XA dataset; accuracy on masked segments at 85/90/95% mask ratios.",
    ),
    "table5_one_step": PaperReference(
        artefact="Table V (XA) — one-step traffic state prediction",
        values={
            "dcrnn": {"mae": 1.092, "mape": 11.77, "rmse": 2.312},
            "gwnet": {"mae": 1.113, "mape": 11.44, "rmse": 2.264},
            "mtgnn": {"mae": 1.072, "mape": 10.56, "rmse": 1.903},
            "trgnn": {"mae": 1.103, "mape": 11.46, "rmse": 2.042},
            "stgode": {"mae": 1.122, "mape": 12.59, "rmse": 2.272},
            "stnorm": {"mae": 0.974, "mape": 10.27, "rmse": 1.973},
            "sstban": {"mae": 0.802, "mape": 9.972, "rmse": 1.873},
            "bigcity": {"mae": 0.791, "mape": 9.732, "rmse": 1.743},
        },
        note="XA dataset; the paper reports a second XA block for the companion city (labelled CD in the text).",
    ),
    "table5_multi_step": PaperReference(
        artefact="Table V (XA) — multi-step traffic state prediction",
        values={
            "dcrnn": {"mae": 1.293, "mape": 16.38, "rmse": 2.492},
            "gwnet": {"mae": 1.304, "mape": 15.59, "rmse": 2.331},
            "mtgnn": {"mae": 1.223, "mape": 14.91, "rmse": 2.163},
            "trgnn": {"mae": 1.263, "mape": 15.90, "rmse": 2.423},
            "stgode": {"mae": 1.392, "mape": 17.34, "rmse": 2.304},
            "stnorm": {"mae": 1.268, "mape": 15.64, "rmse": 2.281},
            "sstban": {"mae": 1.183, "mape": 14.21, "rmse": 2.292},
            "bigcity": {"mae": 1.162, "mape": 14.01, "rmse": 2.143},
        },
        note="XA dataset; 6-slice horizon.",
    ),
    "table5_imputation": PaperReference(
        artefact="Table V (XA) — traffic state imputation",
        values={
            "dcrnn": {"mae": 0.585, "mape": 7.493, "rmse": 1.403},
            "gwnet": {"mae": 0.847, "mape": 10.63, "rmse": 1.833},
            "mtgnn": {"mae": 0.906, "mape": 11.12, "rmse": 1.790},
            "trgnn": {"mae": 0.944, "mape": 11.79, "rmse": 1.815},
            "stgode": {"mae": 0.989, "mape": 12.40, "rmse": 1.709},
            "stnorm": {"mae": 0.940, "mape": 11.64, "rmse": 1.789},
            "sstban": {"mae": 0.883, "mape": 11.23, "rmse": 1.736},
            "bigcity": {"mae": 0.536, "mape": 6.671, "rmse": 1.335},
        },
        note="XA dataset; 25% of the inputs masked.",
    ),
    "table6_generalization": PaperReference(
        artefact="Table VI (XA) — cross-city generalisation",
        values={
            "xa_like/native": {"tte_mae": 1.72, "tte_rmse": 2.61, "next_acc": 0.837, "next_mrr@5": 0.923},
            "xa_like/transferred": {"tte_mae": 1.82, "tte_rmse": 2.78, "next_acc": 0.806, "next_mrr@5": 0.912},
        },
        note="BIGCity trained on XA vs the BJ-trained backbone transferred to XA (BIG-BJ); paper reports <7% degradation.",
    ),
}


def get_reference(key: str) -> PaperReference:
    """Look up a paper reference by key (raises ``KeyError`` with the options)."""
    if key not in PAPER_REFERENCES:
        raise KeyError(f"unknown paper reference {key!r}; available: {sorted(PAPER_REFERENCES)}")
    return PAPER_REFERENCES[key]


def build_reproduction_report(context, dataset_name: str = "xa_like") -> ReproductionReport:
    """Run the main comparison experiments and pair them with paper values.

    This trains (or reuses from the context cache) BIGCity and the baselines,
    so it costs the same as the corresponding benchmarks; use it to produce a
    Markdown paper-vs-measured report outside the pytest harness:

    .. code-block:: python

        from repro.eval.harness import ExperimentContext, get_profile
        from repro.eval.paper_values import build_reproduction_report

        report = build_reproduction_report(ExperimentContext(get_profile("quick")))
        report.save("reproduction_report.md")
    """
    from repro.eval.experiments import run_table3_trajectory_tasks, run_table4_recovery, run_table5_traffic_state

    report = ReproductionReport(title=f"BIGCity reproduction report ({dataset_name})")
    table3 = run_table3_trajectory_tasks(context, dataset_name)
    report.add_table("Table III — travel time estimation", table3["travel_time"], get_reference("table3_travel_time"))
    report.add_table("Table III — classification", table3["classification"], get_reference("table3_classification"))
    report.add_table("Table III — next hop", table3["next_hop"], get_reference("table3_next_hop"))
    report.add_table("Table III — similarity search", table3["similarity"], get_reference("table3_similarity"))
    report.add_table("Table IV — recovery", run_table4_recovery(context, dataset_name), get_reference("table4_recovery"))
    dataset = context.dataset(dataset_name)
    if dataset.has_dynamic_features:
        table5 = run_table5_traffic_state(context, dataset_name)
        report.add_table("Table V — one-step", table5["one_step"], get_reference("table5_one_step"))
        report.add_table("Table V — multi-step", table5["multi_step"], get_reference("table5_multi_step"))
        report.add_table("Table V — imputation", table5["imputation"], get_reference("table5_imputation"))
    return report
