"""Experiment registry: the per-experiment index required by DESIGN.md.

Maps each paper artefact (table or figure) to the runner that regenerates it,
together with the workload description and the benchmark file to execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.eval import experiments


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artefact of the paper's evaluation section."""

    experiment_id: str
    paper_reference: str
    description: str
    runner: Callable
    benchmark_target: str


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "table2": ExperimentSpec(
        experiment_id="table2",
        paper_reference="Table II",
        description="Dataset statistics of the three (synthetic substitute) cities.",
        runner=experiments.run_table2_dataset_statistics,
        benchmark_target="benchmarks/test_table2_datasets.py",
    ),
    "table3": ExperimentSpec(
        experiment_id="table3",
        paper_reference="Table III",
        description="Trajectory non-generative tasks (TTE, classification, next hop, similarity) vs 7 baselines.",
        runner=experiments.run_table3_trajectory_tasks,
        benchmark_target="benchmarks/test_table3_trajectory_tasks.py",
    ),
    "table4": ExperimentSpec(
        experiment_id="table4",
        paper_reference="Table IV",
        description="Trajectory recovery at 85/90/95% mask ratios vs 4 recovery baselines.",
        runner=experiments.run_table4_recovery,
        benchmark_target="benchmarks/test_table4_recovery.py",
    ),
    "table5": ExperimentSpec(
        experiment_id="table5",
        paper_reference="Table V",
        description="Traffic-state one-step / multi-step prediction and imputation vs 7 baselines.",
        runner=experiments.run_table5_traffic_state,
        benchmark_target="benchmarks/test_table5_traffic_state.py",
    ),
    "table6": ExperimentSpec(
        experiment_id="table6",
        paper_reference="Table VI",
        description="Cross-city generalisation: backbone trained on BJ-like transferred to XA/CD-like.",
        runner=experiments.run_table6_generalization,
        benchmark_target="benchmarks/test_table6_generalization.py",
    ),
    "table7": ExperimentSpec(
        experiment_id="table7",
        paper_reference="Table VII",
        description="Design ablations: w/o dynamic encoder, static encoder, fusion, prompts.",
        runner=experiments.run_table7_design_ablations,
        benchmark_target="benchmarks/test_table7_ablation_design.py",
    ),
    "table8": ExperimentSpec(
        experiment_id="table8",
        paper_reference="Table VIII",
        description="Multi-task co-training ablation over {next hop, TTE, multi-step} subsets.",
        runner=experiments.run_table8_cotraining_ablations,
        benchmark_target="benchmarks/test_table8_ablation_cotraining.py",
    ),
    "table9": ExperimentSpec(
        experiment_id="table9",
        paper_reference="Table IX",
        description="Training efficiency: parameter footprint and per-epoch time vs two-stage baselines.",
        runner=experiments.run_table9_efficiency,
        benchmark_target="benchmarks/test_table9_efficiency.py",
    ),
    "fig1": ExperimentSpec(
        experiment_id="fig1",
        paper_reference="Figure 1",
        description="Radar chart: BIGCity score relative to the best baseline per task.",
        runner=experiments.run_fig1_radar,
        benchmark_target="benchmarks/test_fig1_radar.py",
    ),
    "fig5": ExperimentSpec(
        experiment_id="fig5",
        paper_reference="Figure 5",
        description="LoRA sensitivity: rank r and module coverage n sweeps on TTE / next hop / similarity.",
        runner=experiments.run_fig5_lora_sensitivity,
        benchmark_target="benchmarks/test_fig5_lora_sensitivity.py",
    ),
    "fig6": ExperimentSpec(
        experiment_id="fig6",
        paper_reference="Figure 6",
        description="Efficiency and scalability: inference time vs input size, search time / mean rank vs database size.",
        runner=experiments.run_fig6_scalability,
        benchmark_target="benchmarks/test_fig6_scalability.py",
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (e.g. ``"table3"`` or ``"fig5"``)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id]


def run_registered(experiment_ids=None, profile_name=None, num_workers=None) -> Dict[str, object]:
    """Regenerate registered experiments, sharded over ``num_workers`` processes.

    ``num_workers=None`` reads the ``REPRO_EVAL_WORKERS`` environment variable
    (see :mod:`repro.eval.parallel`), which is how the slow benchmark tier is
    parallelised without touching each benchmark file.  Results are returned
    per experiment id in the requested order and are identical for any worker
    count.
    """
    from repro.eval.parallel import run_experiments

    ids = list(experiment_ids) if experiment_ids is not None else sorted(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in ids if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown!r}; available: {sorted(EXPERIMENTS)}")
    return run_experiments(ids, profile_name=profile_name, num_workers=num_workers)
