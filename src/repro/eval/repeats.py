"""Repeated-run aggregation (mean ± standard deviation).

The paper repeats every comparison ten times and reports means (standard
deviations are published alongside the code).  This module provides the same
machinery for the reproduction: run any experiment callable under several
seeds and aggregate the resulting :class:`~repro.eval.results.ResultTable`
objects into per-cell mean and standard deviation tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.results import ResultTable

__all__ = ["AggregatedTable", "aggregate_tables", "repeat_experiment"]


@dataclass
class AggregatedTable:
    """Mean and standard deviation of a set of result tables."""

    mean: ResultTable
    std: ResultTable
    num_runs: int

    def cell(self, model: str, metric: str) -> Tuple[Optional[float], Optional[float]]:
        """``(mean, std)`` for one cell; ``(None, None)`` if absent."""
        return self.mean.value(model, metric), self.std.value(model, metric)

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render ``mean ± std`` cells in the same layout as ``ResultTable.to_text``."""
        metrics = self.mean.metric_names
        lines = []
        if self.mean.title:
            title = f"{self.mean.title} (mean ± std over {self.num_runs} runs)"
            lines.append(title)
            lines.append("-" * len(title))
        header = ["model"] + metrics
        rows = []
        for model, values in self.mean.rows.items():
            row = [model]
            for metric in metrics:
                mean = values.get(metric)
                std = (self.std.rows.get(model) or {}).get(metric)
                if mean is None:
                    row.append("-")
                elif std is None:
                    row.append(float_format.format(mean))
                else:
                    row.append(f"{float_format.format(mean)}±{float_format.format(std)}")
            rows.append(row)
        widths = [max(len(str(line[i])) for line in [header] + rows) for i in range(len(header))]
        for line in [header] + rows:
            lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(line, widths)))
        return "\n".join(lines)


def aggregate_tables(tables: Sequence[ResultTable]) -> AggregatedTable:
    """Aggregate result tables produced by repeated runs of one experiment.

    Models or metrics missing from some runs are aggregated over the runs
    that do contain them.
    """
    if not tables:
        raise ValueError("aggregate_tables needs at least one table")
    title = tables[0].title
    higher = dict(tables[0].higher_is_better)
    samples: Dict[str, Dict[str, List[float]]] = {}
    for table in tables:
        for model, row in table.rows.items():
            model_samples = samples.setdefault(model, {})
            for metric, value in row.items():
                model_samples.setdefault(metric, []).append(float(value))

    mean_table = ResultTable(title=title, higher_is_better=higher)
    std_table = ResultTable(title=f"{title} — std" if title else "std", higher_is_better=higher)
    for model, metrics in samples.items():
        mean_table.add_row(model, {metric: float(np.mean(values)) for metric, values in metrics.items()})
        std_table.add_row(model, {metric: float(np.std(values)) for metric, values in metrics.items()})
    return AggregatedTable(mean=mean_table, std=std_table, num_runs=len(tables))


def repeat_experiment(
    experiment: Callable[[int], ResultTable],
    seeds: Sequence[int] = (0, 1, 2),
) -> AggregatedTable:
    """Run ``experiment(seed)`` for every seed and aggregate the results.

    The callable receives the seed and must return a :class:`ResultTable`;
    typical usage builds a fresh :class:`~repro.eval.harness.ExperimentContext`
    per seed inside the callable.
    """
    if not seeds:
        raise ValueError("repeat_experiment needs at least one seed")
    tables = [experiment(int(seed)) for seed in seeds]
    return aggregate_tables(tables)
