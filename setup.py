"""Setuptools shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 517 editable installs (which build an editable wheel) fail.
Keeping a ``setup.py`` allows ``pip install -e . --no-use-pep517`` and plain
``python setup.py develop`` to work offline; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
